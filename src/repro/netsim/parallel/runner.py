"""Conservative-lookahead coordinator and worker processes.

One worker process per shard, each running an ordinary
:class:`~repro.netsim.engine.Simulator` over its slice of the graph
(:mod:`.shard`).  The coordinator advances everyone in lockstep windows of
length ``L`` — the minimum cut-link one-way delay (:mod:`.partition`):

* every event executed in the window ``(s, e]`` has time ``> s``, so a
  packet finishing serialization at ``t`` arrives remotely at
  ``t + delay > s + L >= e`` — strictly after the barrier;
* therefore messages collected at barrier ``e`` can be injected into their
  destination shards before the next window with no risk of a causality
  violation (the classic CMB argument, with the barrier playing the role
  of the null message).

Determinism: inbound messages are injected in sorted
``(deliver_ts, global_link_index, emit_seq)`` order, so the destination
simulator sees one canonical schedule no matter how pipe traffic
interleaved.  The stop condition replicates ``run_built`` exactly — the
``when_apps_done`` predicate and the drained-idle test are evaluated only
on the same ``check_interval`` grid the single-process loop uses, and the
final time is forced to a common barrier so every shard's clock agrees.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import traceback
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["run_sharded"]


# ------------------------------------------------------------------ worker
def _worker_main(conn, spec_payload, run_seed, shard_index, part_fields,
                 next_hops, trace_path) -> None:
    """Worker process entry point: build the shard, then serve commands.

    Protocol (coordinator → worker / worker → coordinator):

    * build → ``("ready", done_states, idle)``
    * ``("advance", until, want_done, inbox)`` →
      ``("ok", outbox, idle, done_states_or_None, now)``
    * ``("finish", final_time)`` → ``("result", sections)`` then exit
    * any exception → ``("spec_error", path, str)`` / ``("error", traceback)``
    """
    from ...scenario.spec import ScenarioSpec, SpecError
    from .partition import Partition
    from .shard import build_shard, collect_shard
    from .wire import decode_packet

    try:
        spec = ScenarioSpec.from_dict(spec_payload)
        spec.validate()
        part = Partition(*part_fields)
        shard = build_shard(spec, run_seed, part, shard_index, next_hops,
                            trace_path=trace_path)
        scenario = shard.scenario
        sim = shard.sim
        if scenario.telemetry is not None:
            scenario.telemetry.start()
        for app in scenario.apps:
            app.start()
        for workload in scenario.workloads:
            workload.start()
        want_done_states = spec.stop.when_apps_done

        def done_states() -> Optional[List[Tuple[int, Any]]]:
            if not want_done_states:
                return None
            return [(index, app.done()) for index, app in shard.apps]

        conn.send(("ready", done_states(), sim.idle_except_control()))
        while True:
            message = conn.recv()
            command = message[0]
            if command == "advance":
                _, until, want_done, inbox = message
                for deliver_ts, link_index, seq, wire in inbox:
                    # Into the destination node's ingress sequencer, with
                    # the sender's per-link emission seq — exactly the
                    # (link, seq) key the local arrival would have carried.
                    shard.receivers[link_index].inject(
                        deliver_ts, link_index, seq, decode_packet(wire))
                sim.run(until=until)
                outbox = shard.outbox[:]
                shard.outbox.clear()
                conn.send(("ok", outbox, sim.idle_except_control(),
                           done_states() if want_done else None, sim.now))
            elif command == "finish":
                _, final_time = message
                if final_time > sim.now:
                    sim.run(until=final_time)
                if scenario.telemetry is not None:
                    scenario.telemetry.stop()
                for workload in scenario.workloads:
                    workload.stop()
                for app in scenario.apps:
                    app.stop()
                for link in shard.boundary_links:
                    link.finalize(final_time)
                sections = collect_shard(shard, spec, duration=final_time)
                if scenario.telemetry is not None:
                    scenario.telemetry.close()
                conn.send(("result", sections))
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown command {command!r}")
    except SpecError as exc:
        conn.send(("spec_error", exc.path, str(exc)))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


# ------------------------------------------------------------- coordinator
class _WorkerPool:
    """The coordinator's handle on its shard worker processes."""

    def __init__(self, spec, run_seed: int, part, next_hops, trace_path):
        self.count = part.shards
        self.trace_paths = [
            f"{trace_path}.shard{k}" if trace_path else None
            for k in range(self.count)
        ]
        context = multiprocessing.get_context()
        spec_payload = spec.to_dict()
        part_fields = (part.shards, dict(part.shard_of), part.cut_pairs, part.lookahead)
        self.pipes = []
        self.processes = []
        for k in range(self.count):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_end, spec_payload, run_seed, k, part_fields,
                      next_hops, self.trace_paths[k]),
                daemon=True,
            )
            process.start()
            child_end.close()
            self.pipes.append(parent_end)
            self.processes.append(process)

    def recv(self, shard_index: int):
        from ...scenario.spec import SpecError

        try:
            reply = self.pipes[shard_index].recv()
        except EOFError:
            raise RuntimeError(
                f"shard worker {shard_index} exited without replying")
        if reply[0] == "spec_error":
            raise SpecError(reply[1], reply[2].split(": ", 1)[-1])
        if reply[0] == "error":
            raise RuntimeError(
                f"shard worker {shard_index} failed:\n{reply[1]}")
        return reply

    def send_all(self, message) -> None:
        for pipe in self.pipes:
            pipe.send(message)

    def recv_all(self) -> List:
        return [self.recv(k) for k in range(self.count)]

    def shutdown(self) -> None:
        for pipe in self.pipes:
            try:
                pipe.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - teardown best effort
                process.terminate()
                process.join(timeout=5.0)


def _dest_shard_of_links(spec, part) -> Dict[int, int]:
    """Global directed link index → shard owning the *destination* node."""
    table: Dict[int, int] = {}
    for index, link in enumerate(spec.graph.links):
        table[2 * index] = part.shard_of[link.b]
        table[2 * index + 1] = part.shard_of[link.a]
    return table


def _merge_traces(trace_path: str, shard_paths: List[Optional[str]]) -> None:
    """Merge per-shard JSONL traces into one file, ordered by time.

    Best-effort by design: within one timestamp, lines order by shard index
    (single-process runs interleave same-time events across the whole graph
    instead), and cut-link ``packet.deliver`` events are absent — the
    delivery end of a boundary link lives on no shard.  Result *metrics*
    are exempt from both caveats; see docs/parallel_engine.md.
    """
    lines: List[Tuple[float, int, int, str]] = []
    for shard_index, path in enumerate(shard_paths):
        if path is None or not os.path.exists(path):
            continue
        with open(path, "r", encoding="utf-8") as handle:
            for line_index, line in enumerate(handle):
                when = json.loads(line).get("t", 0.0)
                lines.append((when, shard_index, line_index, line))
        os.remove(path)
    lines.sort(key=lambda item: (item[0], item[1], item[2]))
    with open(trace_path, "w", encoding="utf-8") as handle:
        for _when, _shard, _index, line in lines:
            handle.write(line)


def run_sharded(spec, seed: Optional[int] = None, *,
                shards: Optional[int] = None,
                trace_path: Optional[str] = None,
                progress_cb=None):
    """Run ``spec`` across shard worker processes; single-process fallback.

    Returns the same :class:`~repro.scenario.runner.ScenarioResult` (byte
    for byte) as ``run(spec, seed)``.  Falls back to the single-process
    runner when the request or the partition collapses to one shard.
    """
    from ...scenario.runner import ScenarioResult, run_streaming, spec_digest
    from ...scenario.spec import SpecError
    from .partition import partition_graph

    spec.validate()
    requested = shards if shards is not None else (
        spec.engine.shards if spec.engine is not None else 1)
    if requested <= 1 or spec.graph is None:
        if requested > 1 and spec.graph is None:
            raise SpecError(
                "engine.shards",
                "sharded execution needs a graph topology "
                "(hosts/links and dumbbell scenarios run single-process)")
        # shards=1 keeps run_streaming from bouncing back here.
        return run_streaming(spec, seed, trace_path=trace_path,
                             progress_cb=progress_cb, shards=1)
    part = partition_graph(spec, requested)
    if part.shards <= 1:
        return run_streaming(spec, seed, trace_path=trace_path,
                             progress_cb=progress_cb, shards=1)
    if spec.telemetry is not None:
        raise SpecError(
            "engine.shards",
            "in-result telemetry blocks are not supported on sharded runs "
            "(per-shard --trace files are; see docs/parallel_engine.md)")

    run_seed = spec.seed if seed is None else int(seed)
    next_hops = spec.graph.routing()
    dest_shard = _dest_shard_of_links(spec, part)
    stop = spec.stop
    horizon = stop.until
    lookahead = part.lookahead
    assert lookahead is not None and lookahead > 0.0

    pool = _WorkerPool(spec, run_seed, part, next_hops, trace_path)
    try:
        pending: List[List[Tuple]] = [[] for _ in range(pool.count)]
        states: List[Any] = [None] * pool.count
        idle = [False] * pool.count

        def route(outbox) -> None:
            for item in outbox:
                pending[dest_shard[item[1]]].append(item)

        for k, reply in enumerate(pool.recv_all()):   # "ready"
            _tag, done, worker_idle = reply
            states[k] = done
            idle[k] = worker_idle
        if progress_cb is not None:
            progress_cb(0.0, horizon)

        def all_apps_done() -> bool:
            flat = [state for shard_states in states for _i, state in shard_states]
            return (any(state is not None for state in flat)
                    and all(state in (None, True) for state in flat))

        def advance_to(target: float, cur: float, want_done: bool) -> float:
            """Drive every shard from ``cur`` to ``target`` in ≤L windows."""
            while cur < target:
                edge = min(target, cur + lookahead)
                final_window = edge == target
                for k, pipe in enumerate(pool.pipes):
                    # (deliver_ts, link_index, emit_seq) is a unique total
                    # order; never compare the wire payload itself.
                    inbox = sorted(pending[k], key=lambda item: item[:3])
                    pending[k] = []
                    pipe.send(("advance", edge, want_done and final_window, inbox))
                for k, reply in enumerate(pool.recv_all()):
                    _tag, outbox, worker_idle, done, _now = reply
                    route(outbox)
                    idle[k] = worker_idle
                    if done is not None:
                        states[k] = done
                cur = edge
                if progress_cb is not None:
                    progress_cb(cur, horizon)
            return cur

        now = 0.0
        if stop.when_apps_done:
            # Mirror run_built: predicate first, then the drained test, both
            # only ever at the start/check-grid points; otherwise advance one
            # check interval (in ≤L sub-windows).
            while now < horizon:
                if all_apps_done():
                    break
                if all(idle) and not any(pending):
                    break
                now = advance_to(min(horizon, now + stop.check_interval),
                                 now, want_done=True)
        else:
            now = advance_to(horizon, now, want_done=False)

        pool.send_all(("finish", now))
        merged: Dict[str, List] = {"apps": [], "links": [], "hosts": [], "workloads": []}
        for reply in pool.recv_all():
            _tag, sections = reply
            for key, entries in sections.items():
                merged[key].extend(entries)
        result = ScenarioResult(
            name=spec.name,
            seed=run_seed,
            spec_digest=spec_digest(spec),
            duration_s=now,
        )
        for key in merged:
            merged[key].sort(key=lambda item: item[0])
        result.apps = [entry for _key, entry in merged["apps"]]
        result.links = [entry for _key, entry in merged["links"]]
        result.hosts = [entry for _key, entry in merged["hosts"]]
        result.workloads = [entry for _key, entry in merged["workloads"]]
        if progress_cb is not None:
            progress_cb(now, horizon)
    finally:
        pool.shutdown()
    if trace_path:
        _merge_traces(trace_path, pool.trace_paths)
    return result
