"""Source-shard half of a cut link.

The sending shard owns the *entire* link model for a cut edge — queueing,
serialization, random loss, ECN marking, busy time — so every ``LinkStats``
field is computed by exactly one shard with exactly the single-process event
order.  Only the propagation-delay leg leaves the process: instead of
scheduling a local ``_deliver``, :class:`BoundaryLink` emits
``(deliver_ts, link_index, seq, wire_tuple)`` into the shard's outbox, and
the coordinator injects it into the destination shard at the next barrier
(conservatively safe because ``deliver_ts > barrier`` by the lookahead
contract).
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

from ..link import Link
from .wire import encode_packet

__all__ = ["BoundaryLink"]


def _no_local_receiver(_packet) -> None:  # pragma: no cover - guard only
    raise RuntimeError("BoundaryLink delivers remotely; local receiver must never fire")


class BoundaryLink(Link):
    """A :class:`Link` whose delivery end lives on another shard."""

    def __init__(self, sim, outbox: List[Tuple], link_index: int, **kwargs):
        super().__init__(sim, **kwargs)
        self._outbox = outbox
        self._link_index = link_index
        #: Per-link emission sequence — with (deliver_ts, link_index) it
        #: gives the coordinator a total injection order independent of
        #: arrival interleaving on the pipe.
        self._emit_seq = 0
        #: (deliver_ts, size) of recent emissions, for the end-of-run stats
        #: correction in :meth:`finalize`.
        self._emitted = deque()
        # Satisfy Link.send()'s attached-receiver check; never called.
        self.attach(_no_local_receiver)

    def _finish_transmission(self) -> None:
        sim = self.sim
        packet = self._tx_packet
        deliver_ts = sim._now + self.delay
        # Same no-overtake clamp as Link._finish_transmission: a lowered
        # delay applies only to packets entering propagation afterwards.
        if deliver_ts < self._last_deliver_ts:
            deliver_ts = self._last_deliver_ts
        self._last_deliver_ts = deliver_ts
        # Count delivery here (the destination shard never sees this Link
        # object); finalize() backs out emissions still in flight at the end
        # of the run, restoring delivered-at-or-before-horizon semantics.
        stats = self.stats
        stats.delivered_packets += 1
        stats.delivered_bytes += packet.size
        emitted = self._emitted
        now = sim._now
        while emitted and emitted[0][0] <= now:
            emitted.popleft()
        emitted.append((deliver_ts, packet.size))
        self._outbox.append(
            (deliver_ts, self._link_index, self._emit_seq, encode_packet(packet)))
        self._emit_seq += 1
        # The packet's lifetime ends at the shard boundary: a serialized copy
        # crosses, so a pooled segment goes straight back to the pool (the
        # destination-side receiver releases its own decoded copy's no-op).
        if packet._pool_state == 1:
            sim.packet_pool.release(packet)
        self._start_next()

    def finalize(self, end_time: float) -> None:
        """Back out emissions whose delivery time lies beyond ``end_time``.

        The single-process run only counts a packet as delivered once its
        deliver event actually executes (deliver_ts <= horizon); packets in
        flight at the end of the run are not delivered.  Emission-time
        counting would overcount exactly those, so the coordinator calls
        this once, after the final barrier, before stats collection.
        """
        for deliver_ts, size in self._emitted:
            if deliver_ts > end_time:
                self.stats.delivered_packets -= 1
                self.stats.delivered_bytes -= size
        self._emitted.clear()
