"""Cross-shard packet serialization.

Packets crossing a shard boundary are flattened to plain tuples: the live
``Packet`` object cannot travel (it may be pool-managed by the sending
shard's simulator, and its header objects use ``__slots__``), and an
explicit wire format keeps the channel honest — only simulation-visible
fields cross, never object identity.

Decoding builds an *unmanaged* packet (``_pool_state == 0``): the receiving
transport's unconditional ``pool.release`` on consumed segments is a no-op
for unmanaged packets, so pooled and sharded paths coexist without
double-release errors.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..packet import Packet, TCPHeader, UDPHeader

__all__ = ["encode_packet", "decode_packet"]

#: Header discriminators on the wire.
_H_TCP = 0
_H_UDP = 1
_H_DICT = 2


def encode_packet(packet: Packet) -> Tuple:
    """Flatten a packet (and its typed header) into a picklable tuple."""
    headers = packet.headers
    if type(headers) is TCPHeader:
        header: Tuple = (
            _H_TCP, headers.seq, headers.len, headers.ts, headers.retransmission,
            headers.ack, headers.ts_echo, headers.ecn_echo, headers.syn, headers.fin,
        )
    elif type(headers) is UDPHeader:
        header = (_H_UDP, dict(headers))
    else:
        # Plain dict (the Packet default) or an app-defined mapping; a copy
        # crosses the pipe so the sender can release/reuse the original.
        header = (_H_DICT, dict(headers))
    return (
        packet.src, packet.dst, packet.sport, packet.dport, packet.protocol,
        packet.payload_bytes, header, packet.ecn_capable, packet.ecn_marked,
        packet.flow_id, packet.cm_matchable, packet.created_at,
    )


def decode_packet(wire: Tuple, packet_id: Optional[int] = None) -> Packet:
    """Rebuild an unmanaged packet from :func:`encode_packet` output."""
    (src, dst, sport, dport, protocol, payload_bytes, header,
     ecn_capable, ecn_marked, flow_id, cm_matchable, created_at) = wire
    kind = header[0]
    if kind == _H_TCP:
        tcp = TCPHeader()
        (tcp.seq, tcp.len, tcp.ts, tcp.retransmission, tcp.ack,
         tcp.ts_echo, tcp.ecn_echo, tcp.syn, tcp.fin) = header[1:]
        headers = tcp
    elif kind == _H_UDP:
        headers = UDPHeader(header[1])
    else:
        headers = dict(header[1])
    return Packet(
        src, dst, sport, dport, protocol=protocol, payload_bytes=payload_bytes,
        headers=headers, ecn_capable=ecn_capable, ecn_marked=ecn_marked,
        flow_id=flow_id, cm_matchable=cm_matchable, created_at=created_at,
        packet_id=packet_id,
    )
