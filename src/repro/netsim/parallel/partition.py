"""Delay-weighted graph partitioning with union-find bookkeeping.

The heuristic is greedy agglomerative min-cut: sort the undirected links by
one-way delay ascending and union endpoints while the merged component stays
under the per-shard capacity, so the *short*-delay links end up internal and
the cut falls across the longest-delay edges it can.  That directly maximises
the conservative lookahead window (the minimum cut-link delay) the barrier
synchronization in :mod:`.runner` advances by.

Everything here is deterministic and declaration-order invariant: ties are
broken by node *names*, never by list positions, so permuting the ``nodes:``
or ``links:`` blocks of a spec yields the identical partition (pinned by
hypothesis property tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = ["Partition", "UnionFind", "partition_graph"]


class UnionFind:
    """Array-based disjoint-set union: path halving + union by size.

    The sequential workhorse behind the partitioner's component bookkeeping
    (the concurrent DSU literature — Jayanti/Tarjan — starts from exactly
    this structure; one process is all we need at spec-compile time).
    """

    __slots__ = ("parent", "size")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets holding ``a`` and ``b``; False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


@dataclass(frozen=True)
class Partition:
    """Node→shard assignment plus the cut-link set and its lookahead floor."""

    #: Effective shard count (may be lower than requested when the graph
    #: cannot be split that many ways; 1 means run single-process).
    shards: int
    #: Every node name → shard index, exactly one shard per node.
    shard_of: Dict[str, int] = field(default_factory=dict)
    #: Cut links as name pairs ``(min(a,b), max(a,b))``.
    cut_pairs: FrozenSet[Tuple[str, str]] = frozenset()
    #: Minimum one-way delay over the cut links — the conservative
    #: synchronization window.  ``None`` when nothing is cut.
    lookahead: Optional[float] = None

    def is_cut(self, a: str, b: str) -> bool:
        pair = (a, b) if a < b else (b, a)
        return pair in self.cut_pairs

    def members(self, shard: int) -> List[str]:
        return [name for name, s in self.shard_of.items() if s == shard]


def _affinity_pairs(spec) -> List[Tuple[str, str]]:
    """Host/peer pairs that must share a shard.

    Apps and workloads whose class sets ``colocate_peer`` reach into the live
    peer object (install a listener on it, ...) — an address-only proxy is
    not enough, so the partitioner hard-unions those pairs before looking at
    any link.
    """
    from ...scenario.applications import get_application

    pairs: List[Tuple[str, str]] = []
    for app_spec in spec.apps:
        if app_spec.peer and get_application(app_spec.app).colocate_peer:
            pairs.append((app_spec.host, app_spec.peer))
    if spec.workloads:
        from ...workloads import get_workload

        for workload_spec in spec.workloads:
            if workload_spec.peer and get_workload(workload_spec.kind).colocate_peer:
                pairs.append((workload_spec.host, workload_spec.peer))
    return pairs


def partition_graph(spec, shards: int) -> Partition:
    """Partition ``spec.graph`` into at most ``shards`` shards.

    Three deterministic phases:

    1. **Affinity pre-unions** — colocation pairs from :func:`_affinity_pairs`
       are merged unconditionally (exempt from capacity: correctness beats
       balance).
    2. **Greedy delay clustering** — undirected links sorted ascending by
       ``(delay, min(a, b), max(a, b))`` (names, so declaration order is
       irrelevant); endpoints are unioned while the merged component fits the
       per-shard capacity ``ceil(n / shards)``.  Long-delay links are seen
       last and tend to stay cut — the lookahead window is their minimum.
    3. **Bin packing** — resulting components, sorted by (size descending,
       lexicographically smallest member), go to the least-loaded shard
       (lowest index on ties).

    Raises :class:`~repro.scenario.spec.SpecError` if any cut link has zero
    one-way delay (no lookahead → conservative sync cannot make progress).
    Falls back to a single-shard partition when the graph cannot be split.
    """
    from ...scenario.spec import SpecError

    graph = spec.graph
    if graph is None:
        raise SpecError("engine.shards", "sharded execution needs a graph topology")
    names = [node.name for node in graph.nodes]
    index_of = {name: i for i, name in enumerate(names)}
    n = len(names)
    shards = max(1, min(int(shards), n))
    if shards == 1:
        return Partition(1, {name: 0 for name in names})

    # A scheduled reroute can lower a link's delay mid-run, and the
    # conservative window must stay safe across the whole run — so both the
    # clustering weights and the lookahead use each pair's *minimum* delay
    # over its lifetime (declared value and every reroute that targets it).
    effective_delay: Dict[Tuple[str, str], float] = {}
    for link in graph.links:
        pair = (link.a, link.b) if link.a < link.b else (link.b, link.a)
        effective_delay[pair] = link.delay
    for reroute in graph.reroutes:
        pair = (reroute.a, reroute.b) if reroute.a < reroute.b else (reroute.b, reroute.a)
        effective_delay[pair] = min(effective_delay[pair], reroute.delay)

    def pair_delay(a: str, b: str) -> float:
        return effective_delay[(a, b) if a < b else (b, a)]

    uf = UnionFind(n)
    for host, peer in _affinity_pairs(spec):
        uf.union(index_of[host], index_of[peer])
    capacity = math.ceil(n / shards)
    for link in sorted(
        graph.links,
        key=lambda l: (pair_delay(l.a, l.b), min(l.a, l.b), max(l.a, l.b)),
    ):
        ra, rb = uf.find(index_of[link.a]), uf.find(index_of[link.b])
        if ra != rb and uf.size[ra] + uf.size[rb] <= capacity:
            uf.union(ra, rb)

    components: Dict[int, List[str]] = {}
    for i, name in enumerate(names):
        components.setdefault(uf.find(i), []).append(name)
    groups = sorted(components.values(), key=lambda members: (-len(members), min(members)))
    if len(groups) == 1:
        return Partition(1, {name: 0 for name in names})
    shard_count = min(shards, len(groups))
    loads = [0] * shard_count
    shard_of: Dict[str, int] = {}
    for members in groups:
        target = min(range(shard_count), key=lambda s: (loads[s], s))
        for member in members:
            shard_of[member] = target
        loads[target] += len(members)

    cut_pairs = set()
    lookahead: Optional[float] = None
    for link in graph.links:
        if shard_of[link.a] != shard_of[link.b]:
            delay = pair_delay(link.a, link.b)
            if delay <= 0.0:
                raise SpecError(
                    "engine.shards",
                    f"cut link {link.a!r}–{link.b!r} has zero one-way delay "
                    "(declared or after a scheduled reroute): conservative "
                    "sync needs delay > 0 on every cross-shard link "
                    "(colocate the endpoints or give the link a delay)",
                )
            cut_pairs.add((link.a, link.b) if link.a < link.b else (link.b, link.a))
            lookahead = delay if lookahead is None else min(lookahead, delay)
    if not cut_pairs:
        # Affinity/capacity left everything reachable inside one shard's
        # components only in theory; with >= 2 shards there is always a cut,
        # but guard the degenerate case anyway.
        return Partition(1, {name: 0 for name in names})
    return Partition(shard_count, shard_of, frozenset(cut_pairs), lookahead)
