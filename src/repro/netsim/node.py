"""Hosts and routers.

A :class:`Host` is an end system: it owns a routing table, an IP layer, a
CPU cost ledger and (optionally) a Congestion Manager.  A :class:`Router`
is a host with forwarding enabled and no CPU accounting — the paper's
experiments never measure router CPU, only end systems.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hostmodel import HostCosts
from ..iplayer import IPLayer
from .engine import Simulator
from .link import Link
from .packet import DEFAULT_MTU

__all__ = ["Host", "Router"]


class Host:
    """A simulated end system.

    Parameters
    ----------
    sim:
        Simulation clock shared by all components.
    name:
        Human-readable label used in traces.
    addr:
        Network address; any hashable/opaque string works.
    costs:
        CPU cost facade; pass ``None`` to disable CPU accounting entirely
        (used for routers and for tests that do not care about overhead).
    mtu:
        Link MTU presented to transports and the CM via ``cm_mtu``.
    """

    forwarding = False

    def __init__(
        self,
        sim: Simulator,
        name: str,
        addr: str,
        costs: Optional[HostCosts] = None,
        mtu: int = DEFAULT_MTU,
    ):
        self.sim = sim
        self.name = name
        self.addr = addr
        self.costs = costs
        self.mtu = mtu
        self.ip = IPLayer(self)
        #: The host's Congestion Manager, attached via :meth:`attach_cm`.
        self.cm = None
        self._routes: Dict[str, Link] = {}
        self._default_route: Optional[Link] = None
        self._next_ephemeral_port = 10000

    # ---------------------------------------------------------------- routing
    def add_route(self, dst_addr: str, link: Link) -> None:
        """Send packets for ``dst_addr`` out of ``link``."""
        self._routes[dst_addr] = link

    def set_default_route(self, link: Link) -> None:
        """Fallback link for destinations without a specific route."""
        self._default_route = link

    def route_for(self, dst_addr: str) -> Optional[Link]:
        """Resolve the outgoing link for a destination (or ``None``)."""
        return self._routes.get(dst_addr, self._default_route)

    # ------------------------------------------------------------------- CM
    def attach_cm(self, cm) -> None:
        """Install a Congestion Manager on this host (sender side only)."""
        self.cm = cm

    # ------------------------------------------------------------------ misc
    def allocate_port(self) -> int:
        """Hand out a fresh ephemeral port number."""
        port = self._next_ephemeral_port
        self._next_ephemeral_port += 1
        return port

    def receive_from_link(self, packet) -> None:
        """Entry point links deliver packets to."""
        self.ip.receive(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ({self.addr})>"


class Router(Host):
    """An interior node that forwards packets between its links.

    Routers never run transports or the CM, and their CPU is not modelled.
    """

    forwarding = True

    def __init__(self, sim: Simulator, name: str, addr: str = ""):
        super().__init__(sim, name, addr or f"router:{name}", costs=None)
