"""Unidirectional links with finite queues, loss and ECN marking.

A :class:`Link` models the three things congestion control reacts to:

* serialisation delay (``size * 8 / rate_bps``),
* propagation delay,
* a finite FIFO queue with drop-tail behaviour (the de-facto router default
  the paper discusses), optional random loss (the Dummynet configuration the
  paper used for Figure 3), and optional ECN marking above a queue
  threshold.

Statistics are kept per link so experiments can report drops, utilisation
and queueing delay.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional

from .engine import Simulator
from .packet import Packet

__all__ = [
    "GilbertElliottLoss",
    "Link",
    "LinkStats",
    "RedQueue",
    "make_aqm",
    "make_loss_model",
]


@dataclass
class LinkStats:
    """Counters maintained by a :class:`Link`."""

    enqueued_packets: int = 0
    #: Packets pulled off the queue and serialised (the queue-delay sample
    #: count: ``queue_delay_total`` accumulates at transmission start, so a
    #: matching start-side denominator is the only one that cannot drift
    #: when packets are still in flight — or lost to a detached receiver —
    #: at simulation end).
    dequeued_packets: int = 0
    delivered_packets: int = 0
    delivered_bytes: int = 0
    dropped_overflow: int = 0
    dropped_random: int = 0
    ecn_marked: int = 0
    busy_time: float = 0.0
    queue_delay_total: float = 0.0

    @property
    def dropped_packets(self) -> int:
        """Total packets lost on this link for any reason."""
        return self.dropped_overflow + self.dropped_random

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the link spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def mean_queue_delay(self) -> float:
        """Average time a transmitted packet spent queued before serialisation."""
        if self.dequeued_packets == 0:
            return 0.0
        return self.queue_delay_total / self.dequeued_packets


class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) burst-loss model.

    The channel alternates between a *good* and a *bad* state; each arriving
    packet first advances the state (transition probabilities
    ``p_good_bad`` / ``p_bad_good``), then is dropped with the loss
    probability of the state it landed in.  With ``loss_good=0`` and
    ``loss_bad=1`` this is the classic on/off wireless fade: mean burst
    length ``1/p_bad_good`` packets, long-run loss rate
    ``p_good_bad / (p_good_bad + p_bad_good)``.

    The model is stateful per direction and draws from the owning link's
    private generator, so a given seed reproduces the same fade pattern.
    """

    kind = "gilbert_elliott"

    def __init__(self, p_good_bad: float, p_bad_good: float,
                 loss_good: float = 0.0, loss_bad: float = 1.0):
        if not 0.0 < p_good_bad <= 1.0:
            raise ValueError("p_good_bad must be in (0, 1]")
        if not 0.0 < p_bad_good <= 1.0:
            raise ValueError("p_bad_good must be in (0, 1]")
        if not 0.0 <= loss_good < 1.0:
            raise ValueError("loss_good must be in [0, 1)")
        if not 0.0 <= loss_bad <= 1.0:
            raise ValueError("loss_bad must be in [0, 1]")
        self.p_good_bad = float(p_good_bad)
        self.p_bad_good = float(p_bad_good)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self._bad = False

    def should_drop(self, rng: random.Random) -> bool:
        """Advance the channel state for one arrival and decide its fate."""
        if self._bad:
            if rng.random() < self.p_bad_good:
                self._bad = False
        elif rng.random() < self.p_good_bad:
            self._bad = True
        loss = self.loss_bad if self._bad else self.loss_good
        return loss > 0.0 and rng.random() < loss


class RedQueue:
    """Random Early Detection with the classic mark-or-drop gate.

    Keeps an EWMA (``w_q``) of the instantaneous queue occupancy.  Below
    ``min_th`` every packet is accepted; between the thresholds packets are
    marked-or-dropped with probability ramping to ``max_p`` (using the
    count-based correction from Floyd & Jacobson so gaps between marks are
    roughly uniform); at or above ``max_th`` every packet is gated.  A gated
    packet is ECN-marked when it is ECN-capable and dropped otherwise —
    exactly the router behaviour the CM's ECN path is designed for.

    While the link sits idle the average decays as if ``m`` small packets
    (``mean_packet_bytes`` each) had drained during the idle period.
    """

    kind = "red"

    def __init__(self, min_th: int, max_th: int, max_p: float = 0.1,
                 w_q: float = 0.002, mean_packet_bytes: int = 1000):
        if min_th < 1:
            raise ValueError("min_th must be >= 1")
        if max_th <= min_th:
            raise ValueError("max_th must be > min_th")
        if not 0.0 < max_p <= 1.0:
            raise ValueError("max_p must be in (0, 1]")
        if not 0.0 < w_q <= 1.0:
            raise ValueError("w_q must be in (0, 1]")
        if mean_packet_bytes < 1:
            raise ValueError("mean_packet_bytes must be >= 1")
        self.min_th = int(min_th)
        self.max_th = int(max_th)
        self.max_p = float(max_p)
        self.w_q = float(w_q)
        self.mean_packet_bytes = int(mean_packet_bytes)
        self.avg = 0.0
        self._count = -1
        self._last_arrival = 0.0

    def should_gate(self, rng: random.Random, occupancy: int, now: float,
                    rate_bps: float) -> bool:
        """Update the average for one arrival; ``True`` means mark-or-drop."""
        if occupancy == 0:
            # Idle decay: shrink the average as if one mean-sized packet
            # had drained per transmission slot since the last arrival.
            slot = self.mean_packet_bytes * 8.0 / rate_bps
            if slot > 0.0 and self.avg > 0.0:
                self.avg *= (1.0 - self.w_q) ** ((now - self._last_arrival) / slot)
        else:
            self.avg += self.w_q * (occupancy - self.avg)
        self._last_arrival = now
        avg = self.avg
        if avg < self.min_th:
            self._count = -1
            return False
        if avg >= self.max_th:
            self._count = 0
            return True
        self._count += 1
        p_b = self.max_p * (avg - self.min_th) / (self.max_th - self.min_th)
        denom = 1.0 - self._count * p_b
        if denom <= 0.0 or rng.random() < p_b / denom:
            self._count = 0
            return True
        return False


def make_loss_model(config: Mapping) -> GilbertElliottLoss:
    """Build a loss model from a validated spec-style ``{"kind": ...}`` block."""
    params = dict(config)
    kind = params.pop("kind", None)
    if kind != "gilbert_elliott":
        raise ValueError(f"unknown loss model kind: {kind!r}")
    return GilbertElliottLoss(**params)


def make_aqm(config: Mapping) -> RedQueue:
    """Build an AQM from a validated spec-style ``{"kind": ...}`` block."""
    params = dict(config)
    kind = params.pop("kind", None)
    if kind != "red":
        raise ValueError(f"unknown aqm kind: {kind!r}")
    return RedQueue(**params)


class Link:
    """A unidirectional, rate-limited, store-and-forward link.

    Parameters
    ----------
    sim:
        The simulation clock.
    rate_bps:
        Transmission rate in bits per second.
    delay:
        One-way propagation delay in seconds.
    queue_limit:
        Maximum number of packets that may wait for transmission (the packet
        currently being serialised does not count).  ``None`` means
        unbounded.
    loss_rate:
        Independent per-packet random drop probability, applied before
        queueing (this is how Dummynet injects loss).
    ecn_threshold:
        If set, packets that arrive when the queue already holds at least
        this many packets are ECN-marked instead of dropped, provided the
        packet is ECN-capable; non-ECN-capable packets are unaffected.
    seed:
        Seed for the private random generator used for loss decisions, so a
        given experiment is reproducible.
    loss_model:
        Optional stateful burst-loss model — a :class:`GilbertElliottLoss`
        instance or its ``{"kind": "gilbert_elliott", ...}`` config mapping
        (a fresh instance is built per link, so directions never share
        fade state).  Applied after the Bernoulli ``loss_rate`` draw.
    aqm:
        Optional active queue management — a :class:`RedQueue` instance or
        its ``{"kind": "red", ...}`` config mapping.  A gated packet is
        ECN-marked when capable, dropped otherwise; mutually exclusive
        with ``ecn_threshold`` at the spec layer.
    name:
        Optional label used in traces and ``repr``.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        delay: float,
        queue_limit: Optional[int] = 100,
        loss_rate: float = 0.0,
        ecn_threshold: Optional[int] = None,
        seed: int = 0,
        loss_model=None,
        aqm=None,
        name: str = "link",
    ):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("link delay must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.queue_limit = queue_limit
        self.loss_rate = float(loss_rate)
        self.ecn_threshold = ecn_threshold
        if isinstance(loss_model, Mapping):
            loss_model = make_loss_model(loss_model)
        if isinstance(aqm, Mapping):
            aqm = make_aqm(aqm)
        self.loss_model = loss_model
        self.aqm = aqm
        self.name = name
        self.stats = LinkStats()
        self._rng = random.Random(seed)
        self._queue: Deque[tuple] = deque()  # (packet, enqueue_time)
        self._busy = False
        #: The packet currently being serialised, and the delivery pipeline
        #: of packets propagating towards the far end.  Propagation delay is
        #: constant per link, so deliveries complete in FIFO order and the
        #: completion events need not carry the packet: the callbacks are
        #: bound once here and scheduled argument-free, which removes the
        #: two per-hop closure/argument allocations from the hot path.
        self._tx_packet: Optional[Packet] = None
        self._in_flight: Deque[Packet] = deque()
        #: Latest delivery timestamp handed out so far.  ``delay`` may be
        #: lowered mid-run (the service's ``PATCH .../links``); clamping
        #: each new delivery to this floor keeps the propagation pipeline
        #: strictly FIFO — packets on a wire cannot overtake — so the
        #: argument-free ``_deliver`` events stay correct.  With a constant
        #: delay the clamp never engages.
        self._last_deliver_ts = 0.0
        self._finish_cb = self._finish_transmission
        self._deliver_cb = self._deliver
        self._receiver: Optional[Callable[[Packet], None]] = None
        self._drop_hook: Optional[Callable[[Packet, str], None]] = None
        # Telemetry probe slots (see repro.telemetry.probes): None is the
        # compiled no-op — the hot paths below pay one identity test each.
        self._probe_enqueue = None
        self._probe_drop = None
        self._probe_deliver = None

    # ------------------------------------------------------------- attachment
    def attach(self, receiver: Callable[[Packet], None]) -> None:
        """Set the callable that receives packets at the far end of the link."""
        self._receiver = receiver

    def attach_telemetry(self, hub) -> None:
        """Bind this link's packet probes to a :class:`~repro.telemetry.TelemetryHub`.

        Probes without a subscribed recorder stay ``None``, keeping the
        corresponding path exactly as cheap as an un-instrumented link.
        """
        self._probe_enqueue = hub.probe("packet.enqueue")
        self._probe_drop = hub.probe("packet.drop")
        self._probe_deliver = hub.probe("packet.deliver")

    def on_drop(self, hook: Callable[[Packet, str], None]) -> None:
        """Register an observer invoked with ``(packet, reason)`` on every drop."""
        self._drop_hook = hook

    # ------------------------------------------------------------------ state
    @property
    def queue_length(self) -> int:
        """Number of packets waiting (not counting the one in transmission)."""
        return len(self._queue)

    def transmission_time(self, packet: Packet) -> float:
        """Serialisation delay for ``packet`` on this link."""
        return packet.size * 8.0 / self.rate_bps

    # ------------------------------------------------------------------- send
    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.

        Returns ``True`` if the packet was accepted (queued or started
        transmitting) and ``False`` if it was dropped.
        """
        if self._receiver is None:
            raise RuntimeError(f"{self.name}: no receiver attached")

        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.stats.dropped_random += 1
            self._notify_drop(packet, "random")
            if packet._pool_state == 1:
                self.sim.packet_pool.release(packet)
            return False

        if self.loss_model is not None and self.loss_model.should_drop(self._rng):
            self.stats.dropped_random += 1
            self._notify_drop(packet, "burst")
            if packet._pool_state == 1:
                self.sim.packet_pool.release(packet)
            return False

        # Overflow is checked before ECN marking: a packet the full queue is
        # about to drop must not be marked (or counted in ``ecn_marked``) —
        # marking is what happens *instead of* dropping, never as well as.
        # The in-transmission packet does not count against ``queue_limit``
        # (see the class docstring), so an idle link accepts even at
        # ``queue_limit=0``: the ``_busy`` test keeps the limit a bound on
        # *waiting* packets only.
        if (self.queue_limit is not None and self._busy
                and self.queue_length >= self.queue_limit):
            self.stats.dropped_overflow += 1
            self._notify_drop(packet, "overflow")
            if packet._pool_state == 1:
                self.sim.packet_pool.release(packet)
            return False

        if self.aqm is not None:
            occupancy = len(self._queue) + (1 if self._busy else 0)
            if self.aqm.should_gate(self._rng, occupancy, self.sim.now,
                                    self.rate_bps):
                if packet.ecn_capable:
                    packet.ecn_marked = True
                    self.stats.ecn_marked += 1
                else:
                    self.stats.dropped_random += 1
                    self._notify_drop(packet, "red")
                    if packet._pool_state == 1:
                        self.sim.packet_pool.release(packet)
                    return False
        elif self.ecn_threshold is not None and packet.ecn_capable and self.queue_length >= self.ecn_threshold:
            packet.ecn_marked = True
            self.stats.ecn_marked += 1

        self.stats.enqueued_packets += 1
        self._queue.append((packet, self.sim.now))
        probe = self._probe_enqueue
        if probe is not None:
            probe(self.sim.now, {"link": self.name, "size": packet.size,
                                 "queue": len(self._queue)})
        if not self._busy:
            self._start_next()
        return True

    # -------------------------------------------------------------- internals
    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        sim = self.sim
        packet, enqueue_time = self._queue.popleft()
        stats = self.stats
        stats.dequeued_packets += 1
        stats.queue_delay_total += sim._now - enqueue_time
        tx_time = packet.size * 8.0 / self.rate_bps
        stats.busy_time += tx_time
        # Argument-free raw entry: the serialising packet rides in
        # ``_tx_packet`` instead of the event, so nothing per-hop is
        # allocated beyond the queue entry itself.
        self._tx_packet = packet
        sim._push(sim._now + tx_time, self._finish_cb, ())

    def _finish_transmission(self) -> None:
        # Propagation happens in parallel with the next serialisation.  A
        # delay change applies only to packets entering propagation from now
        # on, and a *lowered* delay must not let a later packet overtake an
        # earlier one already on the wire: clamp each delivery time to the
        # latest one scheduled so far, keeping the pipeline strictly FIFO.
        self._in_flight.append(self._tx_packet)
        sim = self.sim
        deliver_ts = sim._now + self.delay
        if deliver_ts < self._last_deliver_ts:
            deliver_ts = self._last_deliver_ts
        self._last_deliver_ts = deliver_ts
        sim._push(deliver_ts, self._deliver_cb, ())
        self._start_next()

    def _deliver(self) -> None:
        packet = self._in_flight.popleft()
        stats = self.stats
        stats.delivered_packets += 1
        stats.delivered_bytes += packet.size
        probe = self._probe_deliver
        if probe is not None:
            probe(self.sim.now, {"link": self.name, "size": packet.size})
        self._receiver(packet)

    def _notify_drop(self, packet: Packet, reason: str) -> None:
        probe = self._probe_drop
        if probe is not None:
            probe(self.sim.now, {"link": self.name, "size": packet.size,
                                 "reason": reason})
        if self._drop_hook is not None:
            self._drop_hook(packet, reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.rate_bps/1e6:.1f}Mbps {self.delay*1000:.1f}ms q={self.queue_length}>"
