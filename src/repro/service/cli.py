"""Command-line front end: ``python -m repro.service``.

Subcommands::

    serve                       run the control plane (blocks until shutdown)
    submit <preset-or-spec>     submit a job to a running server
    status [<id>]               one job's status, or the whole fleet
    result <id>                 print a finished job's result JSON
    watch <id>                  poll a job's progress until it finishes
    telemetry <id>              stream a traced job's JSONL telemetry
    cancel <id>                 cooperatively cancel a job
    shutdown                    stop a running server

Every client subcommand targets ``--url`` (default
``http://127.0.0.1:8421``, override with ``REPRO_SERVICE_URL``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

from .client import ServiceClient, ServiceError

__all__ = ["main"]

DEFAULT_URL = os.environ.get("REPRO_SERVICE_URL", "http://127.0.0.1:8421")


def _client(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient(args.url)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .jobs import JobManager
    from .server import ServiceServer, write_endpoint_file

    manager = JobManager(
        slots=args.slots,
        store_path=args.store,
        trace_dir=args.trace_dir,
        keep_finished=args.keep_finished,
    )
    server = ServiceServer(manager, host=args.host, port=args.port, quiet=not args.verbose)
    print(f"repro.service listening on {server.address} "
          f"({args.slots} slot(s), store={args.store or 'none'})", file=sys.stderr)
    if args.endpoint_file:
        write_endpoint_file(args.endpoint_file, server.address)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
        server.stop()
    return 0


def _load_spec_arg(ref: str) -> dict:
    """A spec JSON file path → decoded dict (presets pass through by name)."""
    with open(ref, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    kwargs = {"trace": args.trace}
    if args.shards is not None:
        kwargs["shards"] = args.shards
    if args.seeds is not None:
        kwargs["seeds"] = list(range(1, args.seeds + 1))
    elif args.seed is not None:
        kwargs["seed"] = args.seed
    if args.scenario.endswith(".json") or os.path.sep in args.scenario:
        try:
            kwargs["spec"] = _load_spec_arg(args.scenario)
        except (OSError, ValueError) as exc:
            print(f"cannot load spec {args.scenario!r}: {exc}", file=sys.stderr)
            return 2
    else:
        kwargs["preset"] = args.scenario
    body = client.submit(**kwargs)
    for entry in body["jobs"]:
        print(f"job {entry['id']}: {entry['name']} seed={entry['seed']} "
              f"state={entry['state']} digest={entry['spec_digest'][:12]}")
    if args.wait:
        code = 0
        for entry in body["jobs"]:
            status = client.wait(entry["id"], timeout=args.timeout)
            print(f"job {status['id']}: {status['state']}"
                  + (f" ({status.get('error')})" if status.get("error") else ""))
            if status["state"] != "done":
                code = 1
        return code
    return 0


def _format_status(status: dict) -> str:
    progress = status.get("progress") or {}
    line = (f"job {status['id']}: {status.get('name')} seed={status.get('seed')} "
            f"state={status['state']}")
    if progress:
        line += (f" t={progress.get('sim_time', 0.0):.2f}/{progress.get('stop_time', 0.0):.2f}s"
                 f" ({100.0 * progress.get('fraction', 0.0):.0f}%)")
    if status.get("error"):
        line += f" error={status['error']}"
    if status.get("evicted"):
        line += " [from store]"
    return line


def _cmd_status(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.id is not None:
        print(_format_status(client.job(args.id)))
    else:
        jobs = client.jobs()
        if not jobs:
            print("no jobs")
        for status in jobs:
            print(_format_status(status))
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    client = _client(args)
    text = client.result_text(args.id)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"(wrote {args.output})", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    client = _client(args)
    deadline = time.time() + args.timeout
    while True:
        status = client.job(args.id)
        print(_format_status(status))
        if status["state"] in ("done", "failed", "cancelled"):
            return 0 if status["state"] == "done" else 1
        if time.time() > deadline:
            print(f"timed out after {args.timeout}s", file=sys.stderr)
            return 1
        time.sleep(args.interval)


def _cmd_telemetry(args: argparse.Namespace) -> int:
    client = _client(args)
    for line in client.telemetry_lines(args.id, max_lines=args.max_lines):
        print(line)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    client = _client(args)
    print(_format_status(client.cancel(args.id)))
    return 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    client = _client(args)
    body = client.shutdown()
    print(body.get("message", "ok"))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Simulation-as-a-service control plane over the scenario layer",
    )
    parser.add_argument("--url", default=DEFAULT_URL, metavar="URL",
                        help=f"server base URL (default {DEFAULT_URL})")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the control plane server")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8421, help="listen port (0 = ephemeral)")
    serve.add_argument("--slots", type=int, default=2, metavar="N",
                       help="concurrently running jobs (default 2)")
    serve.add_argument("--store", default=None, metavar="DB",
                       help="sqlite result store: finished jobs auto-ingest and stay "
                            "queryable after in-memory eviction")
    serve.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="directory for per-job telemetry trace files")
    serve.add_argument("--keep-finished", type=int, default=256, metavar="N",
                       help="finished jobs kept in memory before eviction")
    serve.add_argument("--endpoint-file", default=None, metavar="FILE",
                       help="write the listening address to FILE (CI readiness)")
    serve.add_argument("--verbose", action="store_true", help="log each HTTP request")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="submit a preset or spec JSON file")
    submit.add_argument("scenario", help="preset name or path to a spec .json file")
    submit.add_argument("--seed", type=int, default=None, metavar="N")
    submit.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="submit seeds 1..N as separate jobs")
    submit.add_argument("--trace", action="store_true",
                        help="record a telemetry trace (enables the telemetry stream)")
    submit.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run graph scenarios on N shard worker processes "
                             "(byte-identical result; disables the mid-run mailbox)")
    submit.add_argument("--wait", action="store_true", help="block until the job(s) finish")
    submit.add_argument("--timeout", type=float, default=300.0, metavar="S")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="job status (or the whole fleet)")
    status.add_argument("id", type=int, nargs="?", default=None)
    status.set_defaults(func=_cmd_status)

    result = sub.add_parser("result", help="print a finished job's result JSON")
    result.add_argument("id", type=int)
    result.add_argument("--output", default=None, metavar="FILE")
    result.set_defaults(func=_cmd_result)

    watch = sub.add_parser("watch", help="poll a job's progress until it finishes")
    watch.add_argument("id", type=int)
    watch.add_argument("--interval", type=float, default=1.0, metavar="S")
    watch.add_argument("--timeout", type=float, default=600.0, metavar="S")
    watch.set_defaults(func=_cmd_watch)

    telemetry = sub.add_parser("telemetry", help="stream a traced job's JSONL telemetry")
    telemetry.add_argument("id", type=int)
    telemetry.add_argument("--max-lines", type=int, default=None, metavar="N")
    telemetry.set_defaults(func=_cmd_telemetry)

    cancel = sub.add_parser("cancel", help="cooperatively cancel a job")
    cancel.add_argument("id", type=int)
    cancel.set_defaults(func=_cmd_cancel)

    shutdown = sub.add_parser("shutdown", help="stop a running server")
    shutdown.set_defaults(func=_cmd_shutdown)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.service``."""
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach service at {args.url}: {exc}", file=sys.stderr)
        return 1
