"""Stdlib HTTP front end for the service API.

A :class:`ServiceServer` wraps one :class:`~repro.service.api.ServiceApi`
in a :class:`http.server.ThreadingHTTPServer`: every request thread calls
``api.dispatch`` and writes the resulting :class:`Response` back out.
Fixed bodies go with ``Content-Length``; telemetry streams go chunked
(``Transfer-Encoding: chunked``) so a watcher sees trace lines as the
simulation emits them.

No sockets are special-cased anywhere else: the HTTP layer is this file.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .api import Response, ServiceApi
from .jobs import JobManager

__all__ = ["ServiceServer", "make_handler"]


def make_handler(api: ServiceApi, quiet: bool = True):
    """Build a request-handler class bound to one :class:`ServiceApi`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-service/1.0"

        def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
            if not quiet:
                super().log_message(fmt, *args)

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length) if length > 0 else b""

        def _dispatch(self) -> None:
            try:
                response = api.dispatch(self.command, self.path, self._read_body())
            except Exception as exc:  # an endpoint bug must not kill the thread
                response = Response(500, {"error": f"{type(exc).__name__}: {exc}"})
            try:
                if response.stream is not None:
                    self._write_stream(response)
                else:
                    self._write_body(response)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-response
            finally:
                if response.after is not None:
                    response.after()

        def _write_body(self, response: Response) -> None:
            body = response.encoded()
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            self.wfile.flush()

        def _write_stream(self, response: Response) -> None:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Transfer-Encoding", "chunked")
            self.send_header("Connection", "close")
            self.end_headers()
            for chunk in response.stream:
                if not chunk:
                    continue
                self.wfile.write(f"{len(chunk):x}\r\n".encode("ascii"))
                self.wfile.write(chunk)
                self.wfile.write(b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
            self.close_connection = True

        do_GET = _dispatch  # noqa: N815 - stdlib dispatch-by-name
        do_POST = _dispatch  # noqa: N815
        do_DELETE = _dispatch  # noqa: N815
        do_PATCH = _dispatch  # noqa: N815

    return Handler


class ServiceServer:
    """One HTTP listener + job manager, with a clean shutdown path."""

    def __init__(self, manager: JobManager, host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True):
        self.manager = manager
        self.api = ServiceApi(manager, on_shutdown=self.request_shutdown)
        self.httpd = ThreadingHTTPServer((host, port), make_handler(self.api, quiet=quiet))
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._shutdown_requested = threading.Event()
        self._stopped = threading.Event()

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Serve in a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-service-http", daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until a shutdown is requested."""
        self.start()
        self._shutdown_requested.wait()
        self.stop()

    def request_shutdown(self) -> None:
        """Asynchronous shutdown trigger (the ``POST /v1/shutdown`` hook).

        Tears down from a helper thread: ``httpd.shutdown()`` must never run
        on a request thread (it waits for the serve loop, which may be
        waiting on that very request), and the trigger must return so the
        202 response can still be written.
        """
        self._shutdown_requested.set()
        threading.Thread(target=self.stop, daemon=True).start()

    def stop(self) -> None:
        """Stop listening, cancel live jobs, join the workers (idempotent)."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._shutdown_requested.set()
        self.httpd.shutdown()
        self.httpd.server_close()
        self.manager.shutdown()

    # ------------------------------------------------------------- test hook
    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def write_endpoint_file(path: str, address: str) -> None:
    """Record the listening address for out-of-band pickup (CI scripts)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"address": address}, handle)
        handle.write("\n")
