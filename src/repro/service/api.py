"""Socket-free JSON API over the :class:`~repro.service.jobs.JobManager`.

The :class:`Router` and :class:`ServiceApi` are deliberately independent of
any HTTP machinery: ``api.dispatch("GET", "/v1/jobs", b"")`` is the whole
interface, so tests drive the full endpoint surface without opening a
socket (the same pattern the flow-manager tests use).  The stdlib HTTP
front end in :mod:`repro.service.server` is a thin adapter on top.

Every live-inspection and mutation endpoint goes through
:meth:`Job.request` — the mailbox the simulation's control tick drains —
so handlers here never touch engine objects from the HTTP thread.  The
closures passed to the mailbox run inside the event loop and may raise
:class:`ApiError` / :class:`SpecError`; both surface as structured JSON
errors with the right status code.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple
from urllib.parse import unquote

from ..scenario.presets import get_preset
from ..scenario.spec import ScenarioSpec, SpecError
from .jobs import Job, JobManager, JobNotLive, JobState, attach_app_in_loop

__all__ = ["ApiError", "Response", "Router", "ServiceApi"]

#: Telemetry streams poll the trace file at this wall-clock period.
STREAM_POLL_S = 0.05
#: A telemetry stream never outlives this many wall seconds.
STREAM_MAX_WALL_S = 600.0


class ApiError(Exception):
    """An error with an HTTP status and a JSON body."""

    def __init__(self, status: int, message: str, **extra: Any):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


class Response:
    """What a handler returns: JSON payload, raw bytes, or a byte stream."""

    def __init__(self, status: int = 200, payload: Any = None,
                 body: Optional[bytes] = None,
                 stream: Optional[Iterator[bytes]] = None,
                 content_type: str = "application/json",
                 after: Optional[Callable[[], None]] = None):
        self.status = status
        self.payload = payload
        self.body = body
        self.stream = stream
        self.content_type = content_type
        # Invoked by the transport after the body is fully written — the
        # shutdown endpoint uses it so the teardown can never race the
        # response onto a dying process.
        self.after = after

    def encoded(self) -> bytes:
        """The response body as bytes (not valid for streams)."""
        if self.stream is not None:
            raise ValueError("streaming responses have no fixed body")
        if self.body is not None:
            return self.body
        return (json.dumps(self.payload, indent=2, sort_keys=True) + "\n").encode("utf-8")

    def json(self) -> Any:
        """Decode the body as JSON (test convenience)."""
        return json.loads(self.encoded())


class Router:
    """Method + path-template dispatch (``<name>`` segments capture)."""

    def __init__(self):
        self._routes: List[Tuple[str, Tuple[str, ...], Callable]] = []

    def add(self, method: str, pattern: str, handler: Callable) -> None:
        segments = tuple(seg for seg in pattern.strip("/").split("/") if seg)
        self._routes.append((method.upper(), segments, handler))

    def match(self, method: str, path: str) -> Tuple[Optional[Callable], Dict[str, str], bool]:
        """Resolve ``(handler, params, path_known)`` for a request.

        ``path_known`` distinguishes 404 (no route has this shape) from 405
        (the path exists but not for this method).
        """
        segments = [unquote(seg) for seg in path.strip("/").split("/") if seg]
        path_known = False
        for route_method, template, handler in self._routes:
            if len(template) != len(segments):
                continue
            params: Dict[str, str] = {}
            for expected, actual in zip(template, segments):
                if expected.startswith("<") and expected.endswith(">"):
                    params[expected[1:-1]] = actual
                elif expected != actual:
                    break
            else:
                path_known = True
                if route_method == method.upper():
                    return handler, params, True
        return None, {}, path_known


class ServiceApi:
    """The ``/v1`` endpoint surface over one :class:`JobManager`."""

    #: How long a mailbox request may wait for a control tick before the
    #: endpoint reports 504 (the job is wedged or between events).
    INSPECT_TIMEOUT_S = 10.0

    def __init__(self, manager: JobManager,
                 on_shutdown: Optional[Callable[[], None]] = None):
        self.manager = manager
        self.on_shutdown = on_shutdown
        self.started_at = time.time()
        self.router = Router()
        add = self.router.add
        add("GET", "/", self._handle_index)
        add("POST", "/v1/jobs", self._handle_submit)
        add("GET", "/v1/jobs", self._handle_list)
        add("GET", "/v1/jobs/<id>", self._handle_status)
        add("DELETE", "/v1/jobs/<id>", self._handle_cancel)
        add("GET", "/v1/jobs/<id>/result", self._handle_result)
        add("GET", "/v1/jobs/<id>/telemetry", self._handle_telemetry)
        add("GET", "/v1/jobs/<id>/hosts", self._handle_hosts)
        add("GET", "/v1/jobs/<id>/hosts/<host>/macroflows", self._handle_macroflows)
        add("GET", "/v1/jobs/<id>/macroflows/<mfid>/flows", self._handle_flows)
        add("POST", "/v1/jobs/<id>/hosts/<host>/apps", self._handle_attach_app)
        add("PATCH", "/v1/jobs/<id>/links/<link>", self._handle_patch_link)
        add("POST", "/v1/shutdown", self._handle_shutdown)

    # -------------------------------------------------------------- dispatch
    def dispatch(self, method: str, path: str, body: bytes = b"") -> Response:
        """Route one request; every error becomes a structured JSON response."""
        handler, params, path_known = self.router.match(method, path)
        if handler is None:
            if path_known:
                return Response(405, {"error": f"method {method} not allowed on {path}"})
            return Response(404, {"error": f"no such endpoint: {method} {path}"})
        try:
            payload = self._decode_body(body)
            return handler(params, payload)
        except ApiError as exc:
            return Response(exc.status, exc.payload)
        except SpecError as exc:
            return Response(400, {"error": str(exc), "path": exc.path})
        except JobNotLive as exc:
            return Response(409, {"error": str(exc)})
        except TimeoutError as exc:
            return Response(504, {"error": str(exc)})
        except Exception as exc:  # surfaced, not raised: the router is a server
            return Response(500, {"error": f"{type(exc).__name__}: {exc}"})

    @staticmethod
    def _decode_body(body: bytes) -> Dict[str, Any]:
        if not body:
            return {}
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(decoded, dict):
            raise ApiError(400, "request body must be a JSON object")
        return decoded

    # --------------------------------------------------------------- helpers
    def _job(self, params: Dict[str, str]) -> Job:
        raw = params["id"]
        try:
            job_id = int(raw)
        except ValueError:
            raise ApiError(400, f"job id must be an integer, got {raw!r}")
        job = self.manager.get(job_id)
        if job is None:
            raise ApiError(404, f"no such job: {job_id}")
        return job

    def _job_id(self, params: Dict[str, str]) -> int:
        try:
            return int(params["id"])
        except ValueError:
            raise ApiError(400, f"job id must be an integer, got {params['id']!r}")

    def _inspect(self, job: Job, fn: Callable) -> Any:
        """Run ``fn(scenario)`` inside the job's event loop (mailbox hop)."""
        return job.request(fn, timeout=self.INSPECT_TIMEOUT_S)

    # -------------------------------------------------------------- handlers
    def _handle_index(self, params, payload) -> Response:
        jobs = self.manager.jobs()
        return Response(200, {
            "service": "repro.service",
            "slots": self.manager.slots,
            "store": self.manager.store_path,
            "uptime_s": time.time() - self.started_at,
            "jobs": {
                state: sum(1 for job in jobs if job.state == state)
                for state in (JobState.QUEUED, JobState.RUNNING, JobState.DONE,
                              JobState.FAILED, JobState.CANCELLED)
            },
        })

    def _handle_submit(self, params, payload) -> Response:
        if ("preset" in payload) == ("spec" in payload):
            raise ApiError(400, "submit exactly one of 'preset' or 'spec'")
        if "preset" in payload:
            try:
                spec = get_preset(str(payload["preset"]))
            except KeyError as exc:
                raise ApiError(400, str(exc.args[0]))
        else:
            if not isinstance(payload["spec"], dict):
                raise ApiError(400, "'spec' must be a JSON object")
            # Strict round-trip: from_dict rejects unknown keys, validate()
            # walks the whole tree eagerly; a SpecError surfaces as a 400
            # carrying the offending path.
            spec = ScenarioSpec.from_dict(payload["spec"])
        spec.validate()
        if "seed" in payload and "seeds" in payload:
            raise ApiError(400, "pass either 'seed' or 'seeds', not both")
        if "seeds" in payload:
            seeds = payload["seeds"]
            if (not isinstance(seeds, list) or not seeds
                    or not all(isinstance(seed, int) for seed in seeds)):
                raise ApiError(400, "'seeds' must be a non-empty list of integers")
        else:
            seed = payload.get("seed")
            if seed is not None and not isinstance(seed, int):
                raise ApiError(400, "'seed' must be an integer")
            seeds = [seed]
        trace = bool(payload.get("trace", False))
        shards = payload.get("shards")
        if shards is not None and (not isinstance(shards, int) or shards < 1):
            raise ApiError(400, "'shards' must be a positive integer")
        jobs = [self.manager.submit(spec, seed=seed, trace=trace, shards=shards)
                for seed in seeds]
        body: Dict[str, Any] = {"jobs": [job.status() for job in jobs]}
        if len(jobs) == 1:
            body["job"] = body["jobs"][0]
        return Response(201, body)

    def _handle_list(self, params, payload) -> Response:
        return Response(200, {"jobs": [job.status() for job in self.manager.jobs()]})

    def _handle_status(self, params, payload) -> Response:
        job_id = self._job_id(params)
        job = self.manager.get(job_id)
        if job is not None:
            return Response(200, job.status())
        stored = self.manager.store_status(job_id)
        if stored is not None:
            return Response(200, stored)
        raise ApiError(404, f"no such job: {job_id}")

    def _handle_cancel(self, params, payload) -> Response:
        job = self._job(params)
        if job.finished:
            raise ApiError(409, f"job {job.id} already {job.state}")
        self.manager.cancel(job.id)
        return Response(202, job.status())

    def _handle_result(self, params, payload) -> Response:
        job_id = self._job_id(params)
        job = self.manager.get(job_id)
        if job is None:
            stored = self.manager.store_result_json(job_id)
            if stored is None:
                raise ApiError(404, f"no such job: {job_id}")
            return Response(200, body=stored.encode("utf-8"))
        if job.state in JobState.LIVE:
            raise ApiError(409, f"job {job.id} is {job.state}; no result yet")
        if job.state != JobState.DONE:
            raise ApiError(409, f"job {job.id} {job.state}: {job.error}")
        # ScenarioResult.to_json() — byte-identical to the batch CLI's file
        # for the same (spec, seed); the smoke test in CI compares them.
        return Response(200, body=job.result.to_json().encode("utf-8"))

    def _handle_telemetry(self, params, payload) -> Response:
        job = self._job(params)
        if job.trace_path is None:
            raise ApiError(409, f"job {job.id} was not submitted with trace=true")
        return Response(200, stream=self._tail_trace(job),
                        content_type="application/x-ndjson")

    def _tail_trace(self, job: Job) -> Iterator[bytes]:
        """Yield trace lines as they land, until the job finishes and EOF.

        Pure wall-clock file tailing — the sink writes from the worker
        thread, we read the file; no shared state beyond ``job.finished``.
        """
        deadline = time.time() + STREAM_MAX_WALL_S
        while not os.path.exists(job.trace_path):
            if job.finished or time.time() > deadline:
                return
            time.sleep(STREAM_POLL_S)
        with open(job.trace_path, "rb") as handle:
            while True:
                chunk = handle.read(65536)
                if chunk:
                    yield chunk
                    continue
                if job.finished or time.time() > deadline:
                    # One final read: the worker may have flushed between our
                    # empty read and the finished check.
                    chunk = handle.read(65536)
                    if chunk:
                        yield chunk
                        continue
                    return
                time.sleep(STREAM_POLL_S)

    # ------------------------------------------------------- live inspection
    def _handle_hosts(self, params, payload) -> Response:
        job = self._job(params)

        def snapshot(scenario):
            hosts = []
            for name in sorted(scenario.hosts):
                host = scenario.hosts[name]
                entry: Dict[str, Any] = {
                    "host": name,
                    "addr": host.addr,
                    "cm": host.cm is not None,
                }
                if host.cm is not None:
                    entry["open_flows"] = host.cm.open_flow_count
                    entry["macroflows"] = len(host.cm.macroflows)
                hosts.append(entry)
            return {"sim_time": scenario.sim.now, "hosts": hosts}

        return Response(200, self._inspect(job, snapshot))

    def _handle_macroflows(self, params, payload) -> Response:
        job = self._job(params)
        host_name = params["host"]

        def snapshot(scenario):
            if host_name not in scenario.hosts:
                raise ApiError(404, f"job {job.id} has no host {host_name!r}; "
                                    f"have {sorted(scenario.hosts)}")
            host = scenario.hosts[host_name]
            if host.cm is None:
                raise ApiError(409, f"host {host_name!r} has no Congestion Manager")
            return {
                "sim_time": scenario.sim.now,
                "host": host_name,
                "macroflows": [_macroflow_entry(mf) for mf in host.cm.macroflows],
            }

        return Response(200, self._inspect(job, snapshot))

    def _handle_flows(self, params, payload) -> Response:
        job = self._job(params)
        try:
            mf_id = int(params["mfid"])
        except ValueError:
            raise ApiError(400, f"macroflow id must be an integer, got {params['mfid']!r}")

        def snapshot(scenario):
            for name in sorted(scenario.hosts):
                cm = scenario.hosts[name].cm
                if cm is None:
                    continue
                for mf in cm.macroflows:
                    if mf.macroflow_id == mf_id:
                        return {
                            "sim_time": scenario.sim.now,
                            "host": name,
                            "macroflow_id": mf_id,
                            "flows": [_flow_entry(mf, flow)
                                      for _, flow in sorted(mf.flows.items())],
                        }
            raise ApiError(404, f"job {job.id} has no macroflow {mf_id}")

        return Response(200, self._inspect(job, snapshot))

    # --------------------------------------------------------- live mutation
    def _handle_attach_app(self, params, payload) -> Response:
        job = self._job(params)
        host_name = params["host"]
        app_name = payload.get("app")
        if not isinstance(app_name, str) or not app_name:
            raise ApiError(400, "'app' (registry application name) is required")
        peer = str(payload.get("peer", "") or "")
        label = str(payload.get("label", "") or "")
        app_params = payload.get("params", {})
        if not isinstance(app_params, dict):
            raise ApiError(400, "'params' must be a JSON object")

        def attach(scenario):
            return attach_app_in_loop(scenario, app_name, host_name,
                                      peer_name=peer, label=label,
                                      params=app_params)

        return Response(201, self._inspect(job, attach))

    def _handle_patch_link(self, params, payload) -> Response:
        job = self._job(params)
        link_name = params["link"]
        rate_bps = payload.get("rate_bps")
        delay = payload.get("delay")
        at = payload.get("at")
        if rate_bps is None and delay is None:
            raise ApiError(400, "nothing to change: pass 'rate_bps' and/or 'delay'")
        for field, value in (("rate_bps", rate_bps), ("delay", delay), ("at", at)):
            if value is not None and (not isinstance(value, (int, float))
                                      or isinstance(value, bool) or value < 0):
                raise ApiError(400, f"'{field}' must be a non-negative number")
        if rate_bps is not None and rate_bps <= 0:
            raise ApiError(400, "'rate_bps' must be positive")

        def patch(scenario):
            link = _find_link(scenario, link_name)
            if link is None:
                raise ApiError(404, f"job {job.id} has no link {link_name!r}; "
                                    f"have {[name for name, _ in _iter_links(scenario)]}")

            def apply() -> None:
                if rate_bps is not None:
                    link.rate_bps = float(rate_bps)
                if delay is not None:
                    link.delay = float(delay)

            now = scenario.sim.now
            if at is not None and at > now:
                scenario.sim.at(float(at), apply)
                applied_at = float(at)
            else:
                apply()
                applied_at = now
            return {
                "link": link_name,
                "rate_bps": link.rate_bps,
                "delay": link.delay,
                "applies_at": applied_at,
                "sim_time": now,
            }

        return Response(200, self._inspect(job, patch))

    def _handle_shutdown(self, params, payload) -> Response:
        # Deferred via Response.after: the transport triggers the teardown
        # only once the 202 body is on the wire, otherwise the process can
        # exit before the client has read its answer.
        return Response(202, {"ok": True, "message": "shutting down"},
                        after=self.on_shutdown)


# ---------------------------------------------------------- snapshot shaping
def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _macroflow_entry(mf) -> Dict[str, Any]:
    status = mf.status()
    scheduler = mf.scheduler
    entry = {
        "macroflow_id": mf.macroflow_id,
        "key": _jsonable(mf.key),
        "mtu": mf.mtu,
        "flows": sorted(mf.flows),
        "cwnd_bytes": status.cwnd_bytes,
        "rate_bps": status.rate,
        "srtt_s": status.srtt,
        "rttvar_s": status.rttvar,
        "loss_rate": status.loss_rate,
        "outstanding_bytes": mf.outstanding_bytes,
        "reserved_bytes": mf.reserved_bytes,
        "bytes_sent_total": mf.bytes_sent_total,
        "bytes_acked_total": mf.bytes_acked_total,
        "updates_received": mf.updates_received,
        "congestion_reactions": mf.congestion_reactions,
        "scheduler": type(scheduler).__name__,
        "pending_grants": scheduler.pending_requests(),
    }
    if hasattr(scheduler, "weight_of"):
        entry["shares"] = {
            str(flow_id): scheduler.weight_of(flow_id) for flow_id in sorted(mf.flows)
        }
    return entry


def _flow_entry(mf, flow) -> Dict[str, Any]:
    return {
        "flow_id": flow.flow_id,
        "src": flow.src,
        "dst": flow.dst,
        "sport": flow.sport,
        "dport": flow.dport,
        "protocol": flow.protocol,
        "state": flow.state,
        "granted_unnotified": flow.granted_unnotified,
        "outstanding_bytes": flow.outstanding_bytes,
        "pending_requests": mf.scheduler.pending_requests(flow.flow_id),
        "stats": dataclasses.asdict(flow.stats),
    }


def _iter_links(scenario) -> List[Tuple[str, Any]]:
    """Every (name, Link) pair, the same naming the telemetry layer uses."""
    links: List[Tuple[str, Any]] = []
    for (a, b), channel in scenario.channels.items():
        links.append((f"{a}->{b}", channel.forward))
        links.append((f"{b}->{a}", channel.reverse))
    if scenario.dumbbell is not None:
        links.append(("bottleneck", scenario.dumbbell.bottleneck))
        links.append(("bottleneck-rev", scenario.dumbbell.bottleneck_reverse))
    if scenario.graph_net is not None:
        for (a, b), link in scenario.graph_net.links.items():
            links.append((f"{a}->{b}", link))
    return links


def _find_link(scenario, name: str):
    for link_name, link in _iter_links(scenario):
        if link_name == name:
            return link
    return None
