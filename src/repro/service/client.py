"""urllib-based client for the service API (no third-party deps).

Used by the ``python -m repro.service`` CLI subcommands and the CI smoke
script; also handy interactively::

    from repro.service.client import ServiceClient
    client = ServiceClient("http://127.0.0.1:8421")
    job = client.submit(preset="web_vat_mix", seed=1)
    client.wait(job["id"])
    print(client.result_text(job["id"]))
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional
from urllib.error import HTTPError
from urllib.request import Request, urlopen

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """An API-level error (4xx/5xx with a structured JSON body)."""

    def __init__(self, status: int, payload: Dict[str, Any]):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Thin JSON-over-HTTP wrapper mirroring the ``/v1`` endpoints."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------- transport
    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None) -> Any:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = Request(self.base_url + path, data=data, headers=headers, method=method)
        try:
            with urlopen(req, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": raw.decode("utf-8", "replace")}
            raise ServiceError(exc.code, payload) from None

    def request_bytes(self, method: str, path: str) -> bytes:
        req = Request(self.base_url + path, method=method)
        try:
            with urlopen(req, timeout=self.timeout) as response:
                return response.read()
        except HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": raw.decode("utf-8", "replace")}
            raise ServiceError(exc.code, payload) from None

    # ------------------------------------------------------------- endpoints
    def info(self) -> Dict[str, Any]:
        return self.request("GET", "/")

    def submit(self, preset: Optional[str] = None, spec: Optional[Dict[str, Any]] = None,
               seed: Optional[int] = None, seeds: Optional[List[int]] = None,
               trace: bool = False, shards: Optional[int] = None) -> Dict[str, Any]:
        """Submit one job (or one per seed); returns the submission body."""
        body: Dict[str, Any] = {}
        if preset is not None:
            body["preset"] = preset
        if spec is not None:
            body["spec"] = spec
        if seeds is not None:
            body["seeds"] = seeds
        elif seed is not None:
            body["seed"] = seed
        if trace:
            body["trace"] = True
        if shards is not None:
            body["shards"] = shards
        return self.request("POST", "/v1/jobs", body)

    def jobs(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: int) -> Dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: int) -> Dict[str, Any]:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def result_bytes(self, job_id: int) -> bytes:
        return self.request_bytes("GET", f"/v1/jobs/{job_id}/result")

    def result_text(self, job_id: int) -> str:
        return self.result_bytes(job_id).decode("utf-8")

    def result(self, job_id: int) -> Dict[str, Any]:
        return json.loads(self.result_text(job_id))

    def telemetry_lines(self, job_id: int, max_lines: Optional[int] = None) -> Iterator[str]:
        """Stream the job's trace as decoded JSONL lines (live tail)."""
        req = Request(f"{self.base_url}/v1/jobs/{job_id}/telemetry", method="GET")
        count = 0
        with urlopen(req, timeout=self.timeout) as response:
            buffer = b""
            while True:
                chunk = response.read(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    yield line.decode("utf-8")
                    count += 1
                    if max_lines is not None and count >= max_lines:
                        return
            if buffer.strip():
                yield buffer.decode("utf-8")

    def hosts(self, job_id: int) -> Dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}/hosts")

    def macroflows(self, job_id: int, host: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}/hosts/{host}/macroflows")

    def flows(self, job_id: int, macroflow_id: int) -> Dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}/macroflows/{macroflow_id}/flows")

    def attach_app(self, job_id: int, host: str, app: str, peer: str = "",
                   label: str = "", params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {"app": app}
        if peer:
            body["peer"] = peer
        if label:
            body["label"] = label
        if params:
            body["params"] = params
        return self.request("POST", f"/v1/jobs/{job_id}/hosts/{host}/apps", body)

    def patch_link(self, job_id: int, link: str, rate_bps: Optional[float] = None,
                   delay: Optional[float] = None, at: Optional[float] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        if rate_bps is not None:
            body["rate_bps"] = rate_bps
        if delay is not None:
            body["delay"] = delay
        if at is not None:
            body["at"] = at
        return self.request("PATCH", f"/v1/jobs/{job_id}/links/{link}", body)

    def shutdown(self) -> Dict[str, Any]:
        # The server answers 202 before tearing down, but a dying process
        # may still drop the connection under us — treat that as success.
        try:
            return self.request("POST", "/v1/shutdown")
        except (http.client.IncompleteRead, http.client.RemoteDisconnected,
                ConnectionResetError):
            return {"ok": True, "message": "connection closed during shutdown"}

    # ------------------------------------------------------------- utilities
    def wait(self, job_id: int, timeout: float = 120.0, poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = time.time() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.time() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s")
            time.sleep(poll)

    def wait_ready(self, timeout: float = 15.0, poll: float = 0.1) -> Dict[str, Any]:
        """Poll ``GET /`` until the server answers (startup readiness)."""
        deadline = time.time() + timeout
        last_error: Optional[Exception] = None
        while time.time() < deadline:
            try:
                return self.info()
            except (OSError, ServiceError) as exc:
                last_error = exc
                time.sleep(poll)
        raise TimeoutError(f"service at {self.base_url} not ready: {last_error}")
