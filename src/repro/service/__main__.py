"""``python -m repro.service`` — see :mod:`repro.service.cli`."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
