"""Job fleet management for the simulation service.

A :class:`JobManager` owns a bounded pool of worker threads, each executing
one scenario at a time through
:func:`repro.scenario.runner.run_streaming` — the exact code path the batch
CLI uses, which is what makes a service job's result byte-identical to a
``python -m repro.scenario run`` of the same ``(spec, seed)``.

Threading contract (the part ``docs/service.md`` calls the *mailbox
contract*):

* Engine objects (hosts, links, Congestion Managers, macroflows, flows)
  belong to the worker thread running the simulation.  HTTP threads never
  touch them.
* Live reads and mutations are submitted as closures to the job's
  **mailbox** (:meth:`Job.request`); the simulation's periodic control tick
  (an event the engine itself dispatches, see
  :meth:`repro.netsim.engine.Simulator.start_control`) drains the mailbox
  *inside* the event loop and posts each closure's return value back to the
  waiting HTTP thread.
* The only cross-thread state HTTP threads read directly are scalar
  snapshots the worker publishes (job state, sim-time progress) — single
  attribute reads that are atomic under the GIL.
* Cancellation is cooperative: :meth:`Job.cancel` sets a flag; the control
  tick observes it and raises :class:`JobCancelled` inside the event loop,
  aborting the run at a clean event boundary.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from ..scenario.runner import DEFAULT_CONTROL_INTERVAL, run_streaming, spec_digest
from ..scenario.spec import ScenarioSpec, SpecError

__all__ = [
    "Job",
    "JobCancelled",
    "JobManager",
    "JobNotLive",
    "JobState",
    "STORE_SOURCE_PREFIX",
]

#: ``runs.source`` tag prefix for store rows ingested by the service; the
#: job id after the prefix is what lets ``GET /v1/jobs/<id>`` keep answering
#: from the store after the job is evicted from memory.
STORE_SOURCE_PREFIX = "service:job:"


class JobState:
    """Lifecycle states (plain strings so they serialise as-is)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can still transition out of.
    LIVE = (QUEUED, RUNNING)
    #: Terminal states.
    FINISHED = (DONE, FAILED, CANCELLED)


class JobCancelled(Exception):
    """Raised inside the event loop when a job's cancel flag is observed."""


class JobNotLive(Exception):
    """A mailbox request was made against a job that is not running."""


class _MailboxRequest:
    """One closure queued for execution inside the simulation's event loop."""

    __slots__ = ("fn", "done", "result", "error")

    def __init__(self, fn: Callable):
        self.fn = fn
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class Job:
    """One scenario submission and its lifecycle bookkeeping."""

    def __init__(self, job_id: int, spec: ScenarioSpec, seed: int,
                 trace_path: Optional[str] = None,
                 shards: Optional[int] = None):
        self.id = job_id
        self.spec = spec
        self.seed = seed
        #: Shard worker-process count when the sharded engine runs this job
        #: (``None`` for the single-process engine).  Sharded jobs have no
        #: control tick, hence no mailbox — see :meth:`request`.
        self.shards = shards
        self.name = spec.name
        self.spec_digest = spec_digest(spec)
        self.trace_path = trace_path
        self.state = JobState.QUEUED
        self.error: Optional[str] = None
        self.error_path: Optional[str] = None
        self.result = None  # ScenarioResult once DONE
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        # Progress snapshot, published by the worker's progress callback and
        # read (not locked — scalar reads are atomic) by HTTP threads.  On a
        # sharded job the callback fires at each lookahead barrier with the
        # barrier time — i.e. the *minimum* sim-time across the shard
        # workers, the only honest global clock a conservative run has.
        self.sim_time = 0.0
        self.stop_time = spec.stop.until
        self._cancel = threading.Event()
        self._mailbox: deque = deque()
        self._mailbox_lock = threading.Lock()

    # ------------------------------------------------------------- lifecycle
    @property
    def finished(self) -> bool:
        return self.state in JobState.FINISHED

    def cancel(self) -> None:
        """Request a cooperative cancel (observed at the next control tick)."""
        self._cancel.set()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    # --------------------------------------------------------------- mailbox
    def request(self, fn: Callable, timeout: float = 5.0) -> Any:
        """Run ``fn(scenario)`` inside the job's event loop; return its value.

        Blocks the calling (HTTP) thread until the simulation's control tick
        drains the mailbox.  Raises :class:`JobNotLive` if the job is not
        running (or finishes before the request is served), re-raises any
        exception ``fn`` raised, and raises :class:`TimeoutError` if no tick
        serves the request within ``timeout`` wall seconds.
        """
        if self.shards:
            raise JobNotLive(
                f"job {self.id} runs on the sharded engine (shards={self.shards}); "
                "mid-run inspection and mutation need the single-process engine")
        if self.state != JobState.RUNNING:
            raise JobNotLive(f"job {self.id} is {self.state}, not running")
        req = _MailboxRequest(fn)
        with self._mailbox_lock:
            self._mailbox.append(req)
        if self.finished:
            # The job finished between the state check and the append; its
            # worker may already have drained the mailbox for the last time,
            # so reject the stragglers (including our own request) here.
            self._fail_mailbox(f"job {self.id} is {self.state}")
        if not req.done.wait(timeout):
            raise TimeoutError(
                f"job {self.id}: no control tick served the request within {timeout}s"
            )
        if isinstance(req.error, JobNotLive):
            raise req.error
        if req.error is not None:
            raise req.error
        return req.result

    def _drain_mailbox(self, scenario) -> None:
        """Serve queued requests (called from the control tick, in-loop)."""
        while True:
            with self._mailbox_lock:
                if not self._mailbox:
                    return
                req = self._mailbox.popleft()
            try:
                req.result = req.fn(scenario)
            except BaseException as exc:  # posted back to the caller
                req.error = exc
            req.done.set()

    def _fail_mailbox(self, reason: str) -> None:
        """Reject every queued request (job finished or was cancelled)."""
        while True:
            with self._mailbox_lock:
                if not self._mailbox:
                    return
                req = self._mailbox.popleft()
            req.error = JobNotLive(reason)
            req.done.set()

    # ---------------------------------------------------------------- status
    def status(self) -> Dict[str, Any]:
        """JSON-able status snapshot (safe from any thread)."""
        stop_time = self.stop_time
        sim_time = min(self.sim_time, stop_time)
        entry: Dict[str, Any] = {
            "id": self.id,
            "name": self.name,
            "seed": self.seed,
            "state": self.state,
            "spec_digest": self.spec_digest,
            "progress": {
                "sim_time": sim_time,
                "stop_time": stop_time,
                "fraction": (sim_time / stop_time) if stop_time > 0 else 0.0,
            },
            "trace": self.trace_path is not None,
            "shards": self.shards,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            entry["error"] = self.error
            if self.error_path:
                entry["error_path"] = self.error_path
        return entry


class _AttachedApp:
    """A mid-run application attach, dressed as a workload record.

    The scenario runner already stops workloads before static apps and
    collects each one into the result's ``workloads`` section (which is
    omitted when empty) — wrapping service attaches in this record makes
    them visible in the result without touching the runner, while jobs that
    were never mutated stay byte-identical to their batch runs.
    """

    kind = "service_attach"

    class _Spec:
        __slots__ = ("kind", "host")

        def __init__(self, kind: str, host: str):
            self.kind = kind
            self.host = host

    def __init__(self, app, host_name: str, label: str):
        self.app = app
        self.label = label
        self.spec = self._Spec(self.kind, host_name)
        self._stopped = False

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.app.stop()

    def metrics(self) -> Dict[str, Any]:
        return self.app.metrics()


def attach_app_in_loop(scenario, app_name: str, host_name: str,
                       peer_name: str = "", label: str = "",
                       params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Attach a registry application to a live host (event-loop context only).

    This reuses the runtime attach path the stochastic workload generators
    use: registry lookup, schema-validated params, construction against live
    hosts, telemetry binding, ``start()``.  The instance is recorded as a
    ``service_attach`` entry in the result's ``workloads`` section.
    """
    from ..scenario.applications import get_application, validate_params
    from ..scenario.spec import AppSpec

    if host_name not in scenario.hosts:
        raise SpecError("host", f"unknown host {host_name!r}; have {sorted(scenario.hosts)}")
    if peer_name and peer_name not in scenario.hosts:
        raise SpecError("peer", f"unknown peer {peer_name!r}; have {sorted(scenario.hosts)}")
    try:
        app_cls = get_application(app_name)
    except KeyError as exc:
        raise SpecError("app", str(exc.args[0])) from exc
    if app_cls.needs_peer and not peer_name:
        raise SpecError("peer", f"application {app_name!r} requires a peer host")
    attach_index = sum(1 for w in scenario.workloads if isinstance(w, _AttachedApp))
    if not label:
        label = f"service:{app_name}[{attach_index}]"
    host = scenario.hosts[host_name]
    peer = scenario.hosts[peer_name] if peer_name else None
    app_spec = AppSpec(app=app_name, host=host_name, peer=peer_name,
                       label=label, params=dict(params or {}))
    normalized = validate_params(app_name, app_spec.params, path=f"{label}.params")
    app = app_cls(host, peer, app_spec, normalized)
    app.label = label
    if scenario.telemetry is not None:
        app.attach_telemetry(scenario.telemetry.hub)
    app.start()
    scenario.workloads.append(_AttachedApp(app, host_name, label))
    return {"label": label, "app": app_name, "host": host_name,
            "peer": peer_name or None, "attached_at": scenario.sim.now}


class JobManager:
    """Run ScenarioSpec submissions as a bounded fleet of concurrent jobs.

    Parameters
    ----------
    slots:
        Number of worker threads (= concurrently *running* jobs); further
        submissions queue in FIFO order.
    store_path:
        Optional sqlite :class:`repro.results.store.ResultStore` path.
        Completed jobs auto-ingest their result payload (and trace, when
        traced) tagged ``service:job:<id>``, so status and result survive
        in-memory eviction.
    trace_dir:
        Where per-job JSONL trace files go when a submission asks for
        telemetry streaming; a temp directory is created lazily if unset.
    control_interval:
        Simulated seconds between control ticks (mailbox latency bound).
    keep_finished:
        How many finished jobs stay in memory before the oldest are evicted.
    """

    def __init__(self, slots: int = 2, store_path: Optional[str] = None,
                 trace_dir: Optional[str] = None,
                 control_interval: float = DEFAULT_CONTROL_INTERVAL,
                 keep_finished: int = 256):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = slots
        self.store_path = store_path
        self.control_interval = control_interval
        self.keep_finished = keep_finished
        self._trace_dir = trace_dir
        self._jobs: Dict[int, Job] = {}
        self._next_id = 1
        self._lock = threading.Lock()
        self._queue: deque = deque()
        self._queue_cv = threading.Condition(self._lock)
        self._store_lock = threading.Lock()
        self._shutdown = False
        self._workers = [
            threading.Thread(target=self._worker, name=f"repro-service-worker-{i}", daemon=True)
            for i in range(slots)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------ submission
    def submit(self, spec: ScenarioSpec, seed: Optional[int] = None,
               trace: bool = False, shards: Optional[int] = None) -> Job:
        """Validate and enqueue one job; returns its :class:`Job` record.

        ``shards`` (or the spec's own ``engine: {shards: N}``) routes the
        job to the sharded engine — result bytes are identical to the
        single-process run, but the job has no mailbox (no mid-run
        inspection or mutation).  Incompatible submissions are rejected
        here, not at run time, so the caller gets a 400 rather than a
        failed job.
        """
        spec.validate()
        effective = shards if shards is not None else (
            spec.engine.shards if spec.engine is not None else 1)
        if effective > 1:
            if spec.graph is None:
                raise SpecError(
                    "engine.shards",
                    "sharded execution needs a graph topology "
                    "(hosts/links and dumbbell scenarios run single-process)")
            if spec.telemetry is not None:
                raise SpecError(
                    "engine.shards",
                    "in-result telemetry blocks are not supported on sharded "
                    "runs (per-shard --trace files are)")
        run_seed = spec.seed if seed is None else int(seed)
        with self._lock:
            if self._shutdown:
                raise RuntimeError("manager is shut down")
            job_id = self._next_id
            self._next_id += 1
        trace_path = None
        if trace:
            trace_path = os.path.join(self.trace_dir(), f"job{job_id}.jsonl")
        job = Job(job_id, spec, run_seed, trace_path=trace_path,
                  shards=effective if effective > 1 else None)
        with self._queue_cv:
            self._jobs[job_id] = job
            self._queue.append(job)
            self._queue_cv.notify()
        return job

    def trace_dir(self) -> str:
        if self._trace_dir is None:
            self._trace_dir = tempfile.mkdtemp(prefix="repro-service-traces-")
        else:
            os.makedirs(self._trace_dir, exist_ok=True)
        return self._trace_dir

    # ---------------------------------------------------------------- lookup
    def get(self, job_id: int) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All in-memory jobs in submission order."""
        with self._lock:
            return [self._jobs[key] for key in sorted(self._jobs)]

    def cancel(self, job_id: int) -> Optional[Job]:
        """Cooperatively cancel a job; returns its record (or ``None``).

        A queued job is cancelled immediately (it never runs); a running job
        is cancelled by its own event loop at the next control tick.
        """
        job = self._jobs.get(job_id)
        if job is None:
            return None
        job.cancel()
        with self._lock:
            if job.state == JobState.QUEUED:
                try:
                    self._queue.remove(job)
                except ValueError:
                    pass  # a worker already claimed it; its cancel flag wins
                else:
                    job.state = JobState.CANCELLED
                    job.finished_at = time.time()
        return job

    def wait(self, job_id: int, timeout: float = 60.0, poll: float = 0.01) -> Job:
        """Block until a job finishes (testing/benchmark convenience)."""
        job = self._jobs[job_id]
        deadline = time.time() + timeout
        while not job.finished:
            if time.time() > deadline:
                raise TimeoutError(f"job {job_id} still {job.state} after {timeout}s")
            time.sleep(poll)
        return job

    # ------------------------------------------------------ store integration
    def store_status(self, job_id: int) -> Optional[Dict[str, Any]]:
        """Status of an evicted job, answered from the result store."""
        row = self._store_row(job_id)
        if row is None:
            return None
        payload = row["payload"]
        return {
            "id": job_id,
            "name": payload.get("name"),
            "seed": payload.get("seed"),
            "state": JobState.DONE,
            "spec_digest": payload.get("spec_digest"),
            "progress": {
                "sim_time": payload.get("duration_s"),
                "stop_time": payload.get("duration_s"),
                "fraction": 1.0,
            },
            "evicted": True,
            "store": self.store_path,
        }

    def store_result_json(self, job_id: int) -> Optional[str]:
        """Byte-identical result JSON of an evicted job, from the store.

        The store keeps the full payload; re-rendering it with the
        :meth:`repro.scenario.runner.ScenarioResult.to_json` formatting
        round-trips to the original bytes (JSON numbers round-trip exactly).
        """
        import json

        row = self._store_row(job_id)
        if row is None:
            return None
        return json.dumps(row["payload"], indent=2, sort_keys=True, allow_nan=False) + "\n"

    def _store_row(self, job_id: int) -> Optional[Dict[str, Any]]:
        if self.store_path is None or not os.path.exists(self.store_path):
            return None
        from ..results.store import ResultStore

        tag = f"{STORE_SOURCE_PREFIX}{job_id}"
        with self._store_lock:
            with ResultStore(self.store_path) as store:
                for row in store.scenario_results():
                    if row.get("source") == tag:
                        return row
        return None

    def _ingest(self, job: Job) -> None:
        if self.store_path is None:
            return
        from ..results.store import ResultStore

        tag = f"{STORE_SOURCE_PREFIX}{job.id}"
        with self._store_lock:
            with ResultStore(self.store_path) as store:
                store.ingest_scenario_payload(job.result.payload(), source=tag)
                if job.trace_path and os.path.exists(job.trace_path):
                    store.ingest_trace(job.trace_path, source=tag)

    def _evict_finished(self) -> None:
        with self._lock:
            finished = [job for job in self._jobs.values() if job.finished]
            excess = len(finished) - self.keep_finished
            if excess <= 0:
                return
            finished.sort(key=lambda job: job.finished_at or 0.0)
            for job in finished[:excess]:
                self._jobs.pop(job.id, None)

    # ---------------------------------------------------------------- worker
    def _worker(self) -> None:
        while True:
            with self._queue_cv:
                while not self._queue and not self._shutdown:
                    self._queue_cv.wait()
                if self._shutdown and not self._queue:
                    return
                job = self._queue.popleft()
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        if job.cancel_requested:
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            job._fail_mailbox(f"job {job.id} was cancelled before it started")
            return
        job.state = JobState.RUNNING
        job.started_at = time.time()

        def control_hook(scenario) -> None:
            job._drain_mailbox(scenario)
            if job.cancel_requested:
                raise JobCancelled(f"job {job.id} cancelled at t={scenario.sim.now:.3f}")

        def progress_cb(sim_now: float, horizon: float) -> None:
            job.sim_time = sim_now
            job.stop_time = horizon
            if job.shards and job.cancel_requested:
                # No control tick on sharded runs; the barrier callback is
                # the cancellation point instead (≤ one lookahead window of
                # extra work per shard).
                raise JobCancelled(f"job {job.id} cancelled at t={sim_now:.3f}")

        try:
            if job.shards:
                result = run_streaming(
                    job.spec, job.seed,
                    trace_path=job.trace_path,
                    progress_cb=progress_cb,
                    shards=job.shards,
                )
            else:
                result = run_streaming(
                    job.spec, job.seed,
                    trace_path=job.trace_path,
                    control_hook=control_hook,
                    progress_cb=progress_cb,
                    control_interval=self.control_interval,
                )
        except JobCancelled:
            job.state = JobState.CANCELLED
            job.error = f"cancelled at sim t={job.sim_time:.3f}s"
        except SpecError as exc:
            job.state = JobState.FAILED
            job.error = str(exc)
            job.error_path = exc.path
        except Exception as exc:  # a failing job must never take a worker down
            job.state = JobState.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            job.result = result
            try:
                self._ingest(job)
            except Exception as exc:
                job.error = f"result store ingest failed: {exc}"
            job.state = JobState.DONE
        finally:
            job.finished_at = time.time()
            job._fail_mailbox(f"job {job.id} is {job.state}")
            self._evict_finished()

    # -------------------------------------------------------------- shutdown
    def shutdown(self, cancel_running: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work, cancel live jobs, join the workers."""
        with self._queue_cv:
            self._shutdown = True
            queued = list(self._queue)
            self._queue.clear()
            self._queue_cv.notify_all()
        for job in queued:
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            job._fail_mailbox("service shutting down")
        if cancel_running:
            for job in list(self._jobs.values()):
                if job.state == JobState.RUNNING:
                    job.cancel()
        deadline = time.time() + timeout
        for worker in self._workers:
            worker.join(max(0.0, deadline - time.time()))
