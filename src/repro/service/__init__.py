"""Simulation-as-a-service: a control plane over the scenario layer.

The paper's Congestion Manager is a *service* — one long-lived kernel
module answering query/notify calls from many concurrent applications.
This package gives the reproduction the same shape at the systems level: a
long-lived HTTP control plane (stdlib :class:`http.server.ThreadingHTTPServer`,
no new runtime dependencies) fronting a :class:`~repro.service.jobs.JobManager`
that runs :class:`~repro.scenario.spec.ScenarioSpec` submissions as a fleet
of concurrent jobs, with live inspection and mutation of the running
simulations (per-host macroflow and flow listing, mid-run application
attach, link rescheduling) in the CRUD-over-flows style of SDN flow
managers.

Layering:

* :mod:`~repro.service.jobs` — job lifecycle (queued → running →
  done/failed/cancelled), worker threads, the cross-thread **mailbox**
  contract, result-store integration;
* :mod:`~repro.service.api` — a socket-free JSON router exposing the
  ``/v1`` endpoints (drives directly in tests, no HTTP required);
* :mod:`~repro.service.server` — the stdlib HTTP front end;
* :mod:`~repro.service.client` — a urllib client used by the CLI;
* :mod:`~repro.service.cli` — ``python -m repro.service``
  (serve/submit/status/result/watch/cancel/shutdown).

See ``docs/service.md`` for the API reference and the threading contract.
"""

from .api import ApiError, Response, Router, ServiceApi
from .jobs import Job, JobCancelled, JobManager, JobNotLive, JobState

__all__ = [
    "ApiError",
    "Job",
    "JobCancelled",
    "JobManager",
    "JobNotLive",
    "JobState",
    "Response",
    "Router",
    "ServiceApi",
]
