"""repro: a reproduction of the Congestion Manager (Andersen et al., OSDI 2000).

The package provides:

* :mod:`repro.core` — the Congestion Manager itself (macroflows, AIMD
  congestion controller, round-robin scheduler, the ``cm_*`` API and the
  user-space ``libcm`` library);
* :mod:`repro.netsim` — the discrete-event network substrate that replaces
  the paper's testbed;
* :mod:`repro.hostmodel` — the end-host CPU cost model used for the API
  overhead studies;
* :mod:`repro.transport` — TCP (native Reno baseline and TCP/CM) and UDP
  (plain and CM-congestion-controlled sockets);
* :mod:`repro.apps` — the paper's application case studies (layered
  streaming, vat-style interactive audio, web server, bulk transfer);
* :mod:`repro.experiments` — harnesses that regenerate every table and
  figure in the paper's evaluation section.

Quick start::

    from repro import Simulator, Host, Channel, CongestionManager

    sim = Simulator()
    sender = Host(sim, "sender", "10.0.0.1")
    receiver = Host(sim, "receiver", "10.0.0.2")
    Channel(sim, sender, receiver, rate_bps=10e6, one_way_delay=0.03)
    cm = CongestionManager(sender)
    flow = cm.cm_open(sender.addr, receiver.addr, 5000, 6000)

See ``examples/quickstart.py`` for a complete adaptive sender.
"""

from .core import (
    AimdWindowController,
    CongestionManager,
    LibCM,
    QueryResult,
    RateAimdController,
    RoundRobinScheduler,
    WeightedRoundRobinScheduler,
    CM_ECN_CONGESTION,
    CM_NO_CONGESTION,
    CM_PERSISTENT_CONGESTION,
    CM_TRANSIENT_CONGESTION,
)
from .hostmodel import CostModel, CpuLedger, HostCosts
from .netsim import Channel, Host, Link, Packet, Router, Simulator, build_dumbbell

__version__ = "1.0.0"

__all__ = [
    "CongestionManager",
    "LibCM",
    "QueryResult",
    "AimdWindowController",
    "RateAimdController",
    "RoundRobinScheduler",
    "WeightedRoundRobinScheduler",
    "CM_NO_CONGESTION",
    "CM_TRANSIENT_CONGESTION",
    "CM_PERSISTENT_CONGESTION",
    "CM_ECN_CONGESTION",
    "CostModel",
    "CpuLedger",
    "HostCosts",
    "Simulator",
    "Host",
    "Router",
    "Link",
    "Channel",
    "Packet",
    "build_dumbbell",
    "__version__",
]
