"""Seeded random processes the workload generators draw from.

Every function takes the generator's private :class:`random.Random`, so a
workload's whole trajectory is a pure function of ``(spec, run seed)`` —
the same determinism contract every experiment artifact follows.  Only
stdlib distributions are used (``expovariate``, ``weibullvariate``,
``random``), all of which are stable across the supported CPython versions,
which is what lets the preset golden files be byte-compared in CI.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

__all__ = ["ARRIVAL_PROCESSES", "make_interarrival", "bounded_pareto", "geometric"]

#: Inter-arrival process names a workload's ``arrival`` parameter may pick.
#: ``poisson``/``weibull`` are homogeneous; ``flash_crowd`` and ``diurnal``
#: are non-homogeneous Poisson processes (rate varies with simulated time)
#: sampled by thinning, so they additionally need a ``clock``.
ARRIVAL_PROCESSES = ("poisson", "weibull", "flash_crowd", "diurnal")


def _thinned(rng: random.Random, clock: Callable[[], float],
             ceiling: float, rate_fn: Callable[[float], float]) -> Callable[[], float]:
    """Ogata-style thinning sampler for a non-homogeneous Poisson process.

    Draws candidate arrivals from a homogeneous process at the ``ceiling``
    rate and accepts each with probability ``rate_fn(t) / ceiling`` — the
    classic construction, exact for any bounded intensity.  Returns the gap
    from ``clock()`` now to the next accepted arrival.
    """
    def sample() -> float:
        start = clock()
        t = start
        while True:
            t += rng.expovariate(ceiling)
            if rng.random() * ceiling <= rate_fn(t):
                return t - start
    return sample


def make_interarrival(
    rng: random.Random,
    arrival: str,
    rate: float,
    weibull_shape: float = 1.5,
    clock: Optional[Callable[[], float]] = None,
    flash_peak: float = 8.0,
    flash_at: float = 5.0,
    flash_width: float = 2.0,
    diurnal_period: float = 20.0,
    diurnal_depth: float = 0.5,
) -> Callable[[], float]:
    """A zero-argument sampler of inter-arrival gaps.

    ``"poisson"`` draws exponential gaps with mean ``1/rate`` (memoryless
    arrivals); ``"weibull"`` keeps the same mean but shapes the burstiness:
    ``weibull_shape < 1`` clusters arrivals (heavy-tailed gaps), ``> 1``
    regularises them.

    ``"flash_crowd"`` and ``"diurnal"`` are time-varying: ``rate`` is the
    baseline intensity and the instantaneous rate follows

    * flash crowd — a Gaussian surge peaking at ``flash_peak`` times the
      baseline around ``t = flash_at`` with width ``flash_width``;
    * diurnal — ``rate * (1 + diurnal_depth * sin(2*pi*t/diurnal_period))``,
      the day/night swell scaled down to simulation horizons.

    Both are sampled by thinning against the known rate ceiling and need
    ``clock`` (a callable returning the current simulated time, typically
    ``lambda: sim.now``).
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate!r}")
    if arrival == "poisson":
        return lambda: rng.expovariate(rate)
    if arrival == "weibull":
        if weibull_shape <= 0:
            raise ValueError(f"weibull shape must be positive, got {weibull_shape!r}")
        # E[Weibull(scale, k)] = scale * Gamma(1 + 1/k); solve for the scale
        # that gives mean 1/rate so "rate" means the same thing either way.
        scale = 1.0 / (rate * math.gamma(1.0 + 1.0 / weibull_shape))
        return lambda: rng.weibullvariate(scale, weibull_shape)
    if arrival in ("flash_crowd", "diurnal"):
        if clock is None:
            raise ValueError(f"arrival process {arrival!r} needs a clock "
                             "(the rate varies with simulated time)")
        if arrival == "flash_crowd":
            if flash_peak < 1.0:
                raise ValueError(f"flash_peak must be >= 1, got {flash_peak!r}")
            if flash_width <= 0.0:
                raise ValueError(f"flash_width must be positive, got {flash_width!r}")

            def flash_rate(t: float) -> float:
                surge = (t - flash_at) / flash_width
                return rate * (1.0 + (flash_peak - 1.0) * math.exp(-surge * surge))

            return _thinned(rng, clock, rate * flash_peak, flash_rate)
        if not 0.0 <= diurnal_depth < 1.0:
            raise ValueError(f"diurnal_depth must be in [0, 1), got {diurnal_depth!r}")
        if diurnal_period <= 0.0:
            raise ValueError(f"diurnal_period must be positive, got {diurnal_period!r}")
        omega = 2.0 * math.pi / diurnal_period

        def diurnal_rate(t: float) -> float:
            return rate * (1.0 + diurnal_depth * math.sin(omega * t))

        return _thinned(rng, clock, rate * (1.0 + diurnal_depth), diurnal_rate)
    raise ValueError(
        f"unknown arrival process {arrival!r}; choose from {', '.join(ARRIVAL_PROCESSES)}"
    )


def bounded_pareto(rng: random.Random, minimum: int, alpha: float, maximum: int) -> int:
    """A heavy-tailed integer draw in ``[minimum, maximum]``.

    Pareto with shape ``alpha`` scaled by ``minimum`` — the standard model
    for web object and flow sizes (most transfers are mice, a few are
    elephants) — clipped at ``maximum`` so a single draw cannot outlive any
    plausible scenario horizon.
    """
    if minimum < 1:
        raise ValueError(f"minimum size must be >= 1, got {minimum!r}")
    if maximum < minimum:
        raise ValueError(f"maximum {maximum!r} must be >= minimum {minimum!r}")
    if alpha <= 0:
        raise ValueError(f"pareto alpha must be positive, got {alpha!r}")
    draw = minimum * rng.paretovariate(alpha)
    return int(min(float(maximum), draw))


def geometric(rng: random.Random, mean: float) -> int:
    """A geometric draw with the given mean, always at least 1.

    Models the number of requests in a web session: sessions of one fetch
    are the most common, long trains exponentially rarer.
    """
    if mean < 1.0:
        raise ValueError(f"geometric mean must be >= 1, got {mean!r}")
    if mean == 1.0:
        return 1
    # P(K = k) = (1-p)^(k-1) p with p = 1/mean; invert the CDF.
    p = 1.0 / mean
    u = rng.random()
    return 1 + int(math.log(1.0 - u) / math.log(1.0 - p))
