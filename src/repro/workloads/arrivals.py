"""Seeded random processes the workload generators draw from.

Every function takes the generator's private :class:`random.Random`, so a
workload's whole trajectory is a pure function of ``(spec, run seed)`` —
the same determinism contract every experiment artifact follows.  Only
stdlib distributions are used (``expovariate``, ``weibullvariate``,
``random``), all of which are stable across the supported CPython versions,
which is what lets the preset golden files be byte-compared in CI.
"""

from __future__ import annotations

import math
import random
from typing import Callable

__all__ = ["ARRIVAL_PROCESSES", "make_interarrival", "bounded_pareto", "geometric"]

#: Inter-arrival process names a workload's ``arrival`` parameter may pick.
ARRIVAL_PROCESSES = ("poisson", "weibull")


def make_interarrival(
    rng: random.Random,
    arrival: str,
    rate: float,
    weibull_shape: float = 1.5,
) -> Callable[[], float]:
    """A zero-argument sampler of inter-arrival gaps with mean ``1/rate``.

    ``"poisson"`` draws exponential gaps (memoryless arrivals);
    ``"weibull"`` keeps the same mean but shapes the burstiness:
    ``weibull_shape < 1`` clusters arrivals (heavy-tailed gaps, the
    flash-crowd pattern), ``> 1`` regularises them.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate!r}")
    if arrival == "poisson":
        return lambda: rng.expovariate(rate)
    if arrival == "weibull":
        if weibull_shape <= 0:
            raise ValueError(f"weibull shape must be positive, got {weibull_shape!r}")
        # E[Weibull(scale, k)] = scale * Gamma(1 + 1/k); solve for the scale
        # that gives mean 1/rate so "rate" means the same thing either way.
        scale = 1.0 / (rate * math.gamma(1.0 + 1.0 / weibull_shape))
        return lambda: rng.weibullvariate(scale, weibull_shape)
    raise ValueError(
        f"unknown arrival process {arrival!r}; choose from {', '.join(ARRIVAL_PROCESSES)}"
    )


def bounded_pareto(rng: random.Random, minimum: int, alpha: float, maximum: int) -> int:
    """A heavy-tailed integer draw in ``[minimum, maximum]``.

    Pareto with shape ``alpha`` scaled by ``minimum`` — the standard model
    for web object and flow sizes (most transfers are mice, a few are
    elephants) — clipped at ``maximum`` so a single draw cannot outlive any
    plausible scenario horizon.
    """
    if minimum < 1:
        raise ValueError(f"minimum size must be >= 1, got {minimum!r}")
    if maximum < minimum:
        raise ValueError(f"maximum {maximum!r} must be >= minimum {minimum!r}")
    if alpha <= 0:
        raise ValueError(f"pareto alpha must be positive, got {alpha!r}")
    draw = minimum * rng.paretovariate(alpha)
    return int(min(float(maximum), draw))


def geometric(rng: random.Random, mean: float) -> int:
    """A geometric draw with the given mean, always at least 1.

    Models the number of requests in a web session: sessions of one fetch
    are the most common, long trains exponentially rarer.
    """
    if mean < 1.0:
        raise ValueError(f"geometric mean must be >= 1, got {mean!r}")
    if mean == 1.0:
        return 1
    # P(K = k) = (1-p)^(k-1) p with p = 1/mean; invert the CDF.
    p = 1.0 / mean
    u = rng.random()
    return 1 + int(math.log(1.0 - u) / math.log(1.0 - p))
