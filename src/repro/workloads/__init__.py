"""Seeded stochastic traffic generators for the scenario layer.

Where an :class:`~repro.scenario.spec.AppSpec` wires one application at
build time, a workload *churns*: driven by the event engine, it attaches
application instances from the :mod:`repro.scenario.applications` registry
at random (but seeded, hence reproducible) arrival times and detaches them
again while the scenario runs.  This is what stresses the Congestion
Manager's central claim — stable, fair aggregation of congestion state —
under realistic conditions: flows joining half-built macroflows, macroflows
emptying and re-populating, congestion state outliving the last flow on a
path.

Three generator families ship with the package:

``tcp_flows``
    Poisson or Weibull flow arrivals of TCP/CM (or Reno) transfers with
    heavy-tailed (bounded-Pareto) sizes — the classic elephant/mice mix.
``web_sessions``
    Web-browsing sessions against a ``web_server`` peer: geometric request
    trains, exponential think times, Pareto response sizes.
``vat_onoff``
    On/off interactive audio: each on-burst attaches a fresh vat instance
    (opening a new CM flow), each off-period detaches it.
``udp_blast``
    An unresponsive constant-bit-rate UDP stream from an unconnected
    socket — hostile background traffic no CM can regulate.

The churn generators' ``arrival`` parameter also accepts the time-varying
``flash_crowd`` and ``diurnal`` processes (thinned non-homogeneous Poisson)
alongside ``poisson`` and ``weibull``.

Registering a new generator is one :class:`~repro.workloads.base.Workload`
subclass plus a :func:`register_workload` decorator — the spec validator,
builder and CLI ``list`` output all pick it up from here, exactly like the
application registry.
"""

from .arrivals import ARRIVAL_PROCESSES, bounded_pareto, geometric, make_interarrival
from .base import (
    WORKLOADS,
    Workload,
    describe_workloads,
    get_workload,
    known_workloads,
    register_workload,
    validate_workload_params,
)
from .generators import TcpFlowChurn, UdpBlast, VatOnOffBurst, WebSessionChurn

__all__ = [
    "Workload",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "known_workloads",
    "describe_workloads",
    "validate_workload_params",
    "ARRIVAL_PROCESSES",
    "make_interarrival",
    "bounded_pareto",
    "geometric",
    "TcpFlowChurn",
    "WebSessionChurn",
    "VatOnOffBurst",
    "UdpBlast",
]
