"""The bundled stochastic workload generators.

Each generator attaches and detaches registry applications while the
simulation runs, through the event engine — flows join macroflows that are
already congestion-controlled, leave them mid-run, and sometimes drain a
macroflow completely before new arrivals re-populate it.  All randomness
comes from the generator's private seeded RNG, so the full churn trajectory
(and therefore the scenario result) is byte-deterministic per
``(spec, seed)``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..scenario.applications import Param
from ..transport.udp.socket import UDPSocket
from .arrivals import ARRIVAL_PROCESSES, bounded_pareto, geometric, make_interarrival
from .base import Workload, register_workload

__all__ = ["TcpFlowChurn", "WebSessionChurn", "VatOnOffBurst", "UdpBlast"]

#: Shared arrival-process parameter declarations.  Every numeric knob
#: carries a range bound: a value that would hang the reap loop or crash a
#: distribution mid-run must fail at spec validation, not at arrival time.
#: (``diurnal_depth``'s ``< 1`` upper bound lives in ``make_interarrival``;
#: the Param schema only expresses lower bounds.)
_ARRIVAL_PARAMS = {
    "arrival": Param(str, default="poisson", choices=ARRIVAL_PROCESSES,
                     help="inter-arrival process"),
    "rate": Param(float, default=1.0, minimum=0.0, exclusive_minimum=True,
                  help="mean (baseline, for time-varying processes) arrivals per second"),
    "weibull_shape": Param(float, default=1.5, minimum=0.0, exclusive_minimum=True,
                           help="Weibull burstiness (<1 clusters arrivals) when arrival=weibull"),
    "flash_peak": Param(float, default=8.0, minimum=1.0,
                        help="peak-to-baseline rate ratio when arrival=flash_crowd"),
    "flash_at": Param(float, default=5.0, minimum=0.0,
                      help="simulated time the flash crowd peaks (arrival=flash_crowd)"),
    "flash_width": Param(float, default=2.0, minimum=0.0, exclusive_minimum=True,
                         help="Gaussian width of the surge in seconds (arrival=flash_crowd)"),
    "diurnal_period": Param(float, default=20.0, minimum=0.0, exclusive_minimum=True,
                            help="seconds per sinusoidal rate cycle when arrival=diurnal"),
    "diurnal_depth": Param(float, default=0.5, minimum=0.0,
                           help="fractional rate swing in [0, 1) when arrival=diurnal"),
}


def _interarrival_from_params(workload: Workload):
    """Build a workload's gap sampler from the shared arrival params.

    The time-varying processes (flash_crowd, diurnal) need the simulation
    clock, which only the live workload has — so the sampler is assembled
    here rather than at spec-validation time.
    """
    params = workload.params
    return make_interarrival(
        workload.rng, params["arrival"], params["rate"], params["weibull_shape"],
        clock=lambda: workload.sim.now,
        flash_peak=params["flash_peak"], flash_at=params["flash_at"],
        flash_width=params["flash_width"],
        diurnal_period=params["diurnal_period"],
        diurnal_depth=params["diurnal_depth"],
    )


@register_workload
class TcpFlowChurn(Workload):
    """Stochastic TCP transfers to one destination: the elephant/mice mix.

    Every arrival attaches a ``tcp_listener`` on the peer and a
    ``tcp_sender`` on the host with a bounded-Pareto transfer size; a
    periodic reap tick detaches completed flows.  With ``variant="cm"``
    every churned flow joins the host's per-destination macroflow, so the
    macroflow's congestion state is continuously inherited by newcomers and
    survives the emptiest moments of the flow population.
    """

    name = "tcp_flows"
    description = "Poisson/Weibull arrivals of heavy-tailed TCP transfers to the peer"
    colocate_peer = True  # spawns a tcp_listener on the live peer per arrival
    PARAMS = {
        **_ARRIVAL_PARAMS,
        "variant": Param(str, default="cm", choices=("cm", "reno"),
                         help="cm = TCP/CM (requires a CM on the host), reno = TCP/Linux"),
        "min_bytes": Param(int, default=20_000, minimum=1, help="smallest transfer size"),
        "pareto_alpha": Param(float, default=1.5, minimum=0.0, exclusive_minimum=True,
                              help="size tail index (smaller = heavier)"),
        "max_bytes": Param(int, default=2_000_000, minimum=1, help="transfer size cap"),
        "max_active": Param(int, default=16, minimum=1,
                            help="concurrent flow cap; arrivals beyond it are counted as suppressed"),
        "port_base": Param(int, default=20_000, minimum=1,
                           help="first destination port (each flow takes the next one)"),
        "receive_window": Param(int, default=128 * 1024, minimum=1,
                                help="receiver's advertised window"),
        "reap_interval": Param(float, default=0.25, minimum=0.0, exclusive_minimum=True,
                               help="seconds between completed-flow detach sweeps"),
    }

    def __init__(self, scenario, spec, params, rng):
        if params["variant"] == "cm":
            self.needs_cm = True
        super().__init__(scenario, spec, params, rng)
        if params["max_bytes"] < params["min_bytes"]:
            # The builder reports ValueError as a path-qualified SpecError.
            raise ValueError(
                f"max_bytes ({params['max_bytes']}) must be >= min_bytes ({params['min_bytes']})")
        self._draw_gap = _interarrival_from_params(self)
        self._next_port = params["port_base"]
        self._active: List[tuple] = []  # (sender_app, listener_app, size)
        self.flows_started = 0
        self.flows_completed = 0
        self.flows_detached_active = 0
        self.flows_suppressed = 0
        self.bytes_offered = 0
        self.bytes_acked = 0

    # ------------------------------------------------------------- generation
    def _begin(self) -> None:
        self._schedule(self.params["reap_interval"], self._reap)
        self._next_arrival()

    def _next_arrival(self) -> None:
        gap = self._draw_gap()
        if self._arrival_allowed(self.sim.now + gap):
            self._schedule(gap, self._arrive)

    def _arrive(self) -> None:
        if len(self._active) >= self.params["max_active"]:
            self.flows_suppressed += 1
        else:
            self._spawn_flow()
        self._next_arrival()

    def _spawn_flow(self) -> None:
        params = self.params
        port = self._next_port
        self._next_port += 1
        size = bounded_pareto(self.rng, params["min_bytes"], params["pareto_alpha"],
                              params["max_bytes"])
        serial = self.flows_started
        listener = self.spawn_app(
            "tcp_listener", self.peer, None,
            {"port": port}, label=f"{self.label}.listener{serial}")
        sender = self.spawn_app(
            "tcp_sender", self.host, self.peer,
            {"variant": params["variant"], "port": port, "transfer_bytes": size,
             "receive_window": params["receive_window"]},
            label=f"{self.label}.flow{serial}")
        self._active.append((sender, listener, size))
        self.flows_started += 1
        self.bytes_offered += size

    # ----------------------------------------------------------------- reaping
    def _reap(self) -> None:
        survivors = []
        for entry in self._active:
            sender, listener, _size = entry
            if sender.done():
                self._finish_flow(entry, completed=True)
            else:
                survivors.append(entry)
        self._active = survivors
        self._schedule(self.params["reap_interval"], self._reap)

    def _finish_flow(self, entry: tuple, completed: bool) -> None:
        sender, listener, _size = entry
        self.bytes_acked += sender.sender.bytes_acked
        self.detach_app(sender)
        self.detach_app(listener)
        if completed:
            self.flows_completed += 1
        else:
            self.flows_detached_active += 1

    def _teardown(self) -> None:
        for entry in self._active:
            self._finish_flow(entry, completed=bool(entry[0].done()))
        self._active = []

    # ----------------------------------------------------------------- results
    def metrics(self) -> Dict[str, Any]:
        return {
            "flows_started": self.flows_started,
            "flows_completed": self.flows_completed,
            "flows_detached_active": self.flows_detached_active,
            "flows_suppressed": self.flows_suppressed,
            "bytes_offered": self.bytes_offered,
            "bytes_acked": self.bytes_acked,
        }


@register_workload
class WebSessionChurn(Workload):
    """Web-browsing sessions against a ``web_server`` on the peer host.

    Each session arrival attaches one ``web_client`` whose request train is
    drawn per session: a geometric number of fetches, an exponential think
    time between them and a bounded-Pareto response size.  Sessions detach
    when their last response arrives (or at teardown).  The peer must run a
    ``web_server`` application on ``server_port``.
    """

    name = "web_sessions"
    description = "Churning web sessions (geometric trains, Pareto sizes) via web_client"
    PARAMS = {
        **_ARRIVAL_PARAMS,
        "server_port": Param(int, default=80, minimum=1,
                             help="the peer web_server's request port"),
        "requests_mean": Param(float, default=4.0, minimum=1.0,
                               help="mean fetches per session (geometric)"),
        "think_mean": Param(float, default=0.5, minimum=0.0, exclusive_minimum=True,
                            help="mean think time between fetches"),
        "min_bytes": Param(int, default=8_192, minimum=1, help="smallest response size"),
        "pareto_alpha": Param(float, default=1.3, minimum=0.0, exclusive_minimum=True,
                              help="response-size tail index"),
        "max_bytes": Param(int, default=512 * 1024, minimum=1, help="response size cap"),
        "max_active": Param(int, default=32, minimum=1,
                            help="concurrent session cap; arrivals beyond it count as suppressed"),
        "reap_interval": Param(float, default=0.5, minimum=0.0, exclusive_minimum=True,
                               help="seconds between finished-session detach sweeps"),
    }

    def __init__(self, scenario, spec, params, rng):
        super().__init__(scenario, spec, params, rng)
        if params["max_bytes"] < params["min_bytes"]:
            raise ValueError(
                f"max_bytes ({params['max_bytes']}) must be >= min_bytes ({params['min_bytes']})")
        self._draw_gap = _interarrival_from_params(self)
        self._active: List[tuple] = []  # (client_app, size)
        self.sessions_started = 0
        self.sessions_completed = 0
        self.sessions_detached_active = 0
        self.sessions_suppressed = 0
        self.requests_issued = 0
        self.requests_completed = 0
        self.bytes_completed = 0

    def _begin(self) -> None:
        self._schedule(self.params["reap_interval"], self._reap)
        self._next_arrival()

    def _next_arrival(self) -> None:
        gap = self._draw_gap()
        if self._arrival_allowed(self.sim.now + gap):
            self._schedule(gap, self._arrive)

    def _arrive(self) -> None:
        if len(self._active) >= self.params["max_active"]:
            self.sessions_suppressed += 1
        else:
            self._spawn_session()
        self._next_arrival()

    def _spawn_session(self) -> None:
        params = self.params
        n_requests = geometric(self.rng, params["requests_mean"])
        think = max(0.05, self.rng.expovariate(1.0 / params["think_mean"]))
        size = bounded_pareto(self.rng, params["min_bytes"], params["pareto_alpha"],
                              params["max_bytes"])
        serial = self.sessions_started
        client = self.spawn_app(
            "web_client", self.host, self.peer,
            {"server_port": params["server_port"], "n_requests": n_requests,
             "spacing": think, "size": size},
            label=f"{self.label}.session{serial}")
        self._active.append((client, size))
        self.sessions_started += 1
        self.requests_issued += n_requests

    def _reap(self) -> None:
        survivors = []
        for entry in self._active:
            if entry[0].done():
                self._finish_session(entry, completed=True)
            else:
                survivors.append(entry)
        self._active = survivors
        self._schedule(self.params["reap_interval"], self._reap)

    def _finish_session(self, entry: tuple, completed: bool) -> None:
        client, size = entry
        done_fetches = len(client.client.completed_fetches())
        self.requests_completed += done_fetches
        self.bytes_completed += done_fetches * size
        self.detach_app(client)
        if completed:
            self.sessions_completed += 1
        else:
            self.sessions_detached_active += 1

    def _teardown(self) -> None:
        for entry in self._active:
            self._finish_session(entry, completed=bool(entry[0].done()))
        self._active = []

    def metrics(self) -> Dict[str, Any]:
        return {
            "sessions_started": self.sessions_started,
            "sessions_completed": self.sessions_completed,
            "sessions_detached_active": self.sessions_detached_active,
            "sessions_suppressed": self.sessions_suppressed,
            "requests_issued": self.requests_issued,
            "requests_completed": self.requests_completed,
            "bytes_completed": self.bytes_completed,
        }


@register_workload
class VatOnOffBurst(Workload):
    """On/off interactive audio: talk spurts attach vat, silences detach it.

    Every on-burst attaches a *fresh* ``vat`` instance — opening a new CM
    flow into the host's macroflow — and the following off-period detaches
    it, closing the flow.  This is the paper's §3.6 workload made bursty:
    the macroflow's congestion state has to survive audio silences and be
    re-inherited by the next spurt.  The peer must run an
    ``ack_reflector`` on ``port``.
    """

    name = "vat_onoff"
    description = "On/off vat audio bursts (fresh CM flow per talk spurt)"
    needs_cm = True
    PARAMS = {
        "port": Param(int, default=9001, minimum=1, help="the peer's ack_reflector port"),
        "mean_on": Param(float, default=2.0, minimum=0.0, exclusive_minimum=True,
                         help="mean talk-spurt length in seconds"),
        "mean_off": Param(float, default=1.0, minimum=0.0, exclusive_minimum=True,
                          help="mean silence length in seconds"),
        "buffer_frames": Param(int, default=8, minimum=1,
                               help="vat application buffer capacity"),
        "kernel_queue_frames": Param(int, default=4, minimum=1,
                                     help="CM-UDP socket queue depth"),
    }

    def __init__(self, scenario, spec, params, rng):
        super().__init__(scenario, spec, params, rng)
        self._current = None
        self.bursts = 0
        self.frames_generated = 0
        self.frames_sent = 0
        self.frames_acked = 0

    def _begin(self) -> None:
        self._burst_on()

    def _burst_on(self) -> None:
        if not self._arrival_allowed(self.sim.now):
            return
        params = self.params
        self._current = self.spawn_app(
            "vat", self.host, self.peer,
            {"port": params["port"], "buffer_frames": params["buffer_frames"],
             "kernel_queue_frames": params["kernel_queue_frames"]},
            label=f"{self.label}.burst{self.bursts}")
        self.bursts += 1
        on_for = max(0.1, self.rng.expovariate(1.0 / params["mean_on"]))
        self._schedule(on_for, self._burst_off)

    def _burst_off(self) -> None:
        self._detach_current()
        off_for = max(0.1, self.rng.expovariate(1.0 / self.params["mean_off"]))
        self._schedule(off_for, self._burst_on)

    def _detach_current(self) -> None:
        app = self._current
        if app is None:
            return
        self._current = None
        vat = app.app
        self.frames_generated += vat.frames_generated
        self.frames_sent += vat.frames_sent
        self.frames_acked += vat.frames_acked
        self.detach_app(app)

    def _teardown(self) -> None:
        self._detach_current()

    def metrics(self) -> Dict[str, Any]:
        return {
            "bursts": self.bursts,
            "frames_generated": self.frames_generated,
            "frames_sent": self.frames_sent,
            "frames_acked": self.frames_acked,
        }


@register_workload
class UdpBlast(Workload):
    """Unresponsive constant-bit-rate UDP: the hostile background stream.

    Fixed-size datagrams are fired from an *unconnected* socket at a
    constant bit rate, so the kernel's IP output hook cannot match them to
    any CM flow and the stream never reacts to loss or ECN marks — the
    classic non-congestion-controlled aggressor the paper's CM-governed
    flows have to share a bottleneck with.  A sink socket on the peer
    counts what survives the path, so the metrics expose both the offered
    load and the delivered share.
    """

    name = "udp_blast"
    description = "Unresponsive CBR UDP blast (no CM matching, no congestion response)"
    colocate_peer = True  # opens the sink socket on the live peer object
    PARAMS = {
        "rate_bps": Param(float, default=1_000_000.0, minimum=0.0, exclusive_minimum=True,
                          help="constant offered bit rate"),
        "packet_bytes": Param(int, default=1000, minimum=1,
                              help="datagram payload size"),
        "port": Param(int, default=9900, minimum=1,
                      help="sink port opened on the peer"),
    }

    def __init__(self, scenario, spec, params, rng):
        super().__init__(scenario, spec, params, rng)
        # Deliberately left unconnected: sendto() keeps cm_matchable False,
        # so even a host with a CM cannot regulate this stream.
        self._source = UDPSocket(self.host)
        self._sink = UDPSocket(self.peer, local_port=params["port"])
        self._gap = params["packet_bytes"] * 8.0 / params["rate_bps"]

    def _begin(self) -> None:
        self._blast()

    def _blast(self) -> None:
        self._source.sendto(self.params["packet_bytes"], self.peer.addr,
                            self.params["port"])
        if self._arrival_allowed(self.sim.now + self._gap):
            self._schedule(self._gap, self._blast)

    def _teardown(self) -> None:
        self._source.close()
        self._sink.close()

    def metrics(self) -> Dict[str, Any]:
        return {
            "packets_sent": self._source.packets_sent,
            "bytes_sent": self._source.bytes_sent,
            "packets_delivered": self._sink.packets_received,
            "bytes_delivered": self._sink.bytes_received,
        }
