"""The workload registry and the :class:`Workload` base class.

Mirrors :mod:`repro.scenario.applications`: a generator declares a typed
``PARAMS`` schema (reusing :class:`~repro.scenario.applications.Param`),
registers under a kind name, and the spec validator / builder / CLI all
resolve it from here.  The schema walk and its memo are shared with the
application registry so both layers reject bad parameters with identical,
path-qualified messages.
"""

from __future__ import annotations

import random
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type

# Param and the memoized schema walk are deliberately shared with the
# application registry: one validation dialect for both "apps" and
# "workloads" blocks, one memo implementation to fix in one place.
from ..scenario.applications import Param, validate_params_cached
from ..scenario.spec import SpecError, WorkloadSpec

__all__ = [
    "Workload",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "known_workloads",
    "describe_workloads",
    "validate_workload_params",
]

#: Memo of successful schema walks, keyed by (workload class, frozen params);
#: the class object in the key protects against re-registration serving
#: stale defaults (same contract as applications._PARAMS_CACHE).
_PARAMS_CACHE: Dict[tuple, Dict[str, Any]] = {}
_PARAMS_CACHE_MAX = 1024


class Workload:
    """Base class every registered stochastic traffic generator implements.

    Lifecycle (all driven by the scenario runner and the event engine):

    * constructed by the builder from a validated
      :class:`~repro.scenario.spec.WorkloadSpec` with a private
      :class:`random.Random` derived from the run seed;
    * :meth:`start` is called once before the simulator runs; the base
      implementation schedules :meth:`_begin` at ``spec.start``;
    * the generator then attaches/detaches applications at event-engine
      time via :meth:`spawn_app` / :meth:`detach_app`;
    * :meth:`stop` tears everything down after the horizon (cancel pending
      timers, detach survivors, fold their counters into the metrics);
    * :meth:`metrics` returns the aggregate measurement dict for the
      scenario result's ``workloads`` section.
    """

    #: Registry name (set by subclasses, used in :class:`WorkloadSpec.kind`).
    name: ClassVar[str] = ""
    #: One-line description shown by ``python -m repro.scenario list``.
    description: ClassVar[str] = ""
    #: Typed parameter schema validated before build.
    PARAMS: ClassVar[Dict[str, Param]] = {}
    #: Whether :class:`WorkloadSpec.peer` must name a remote host.
    needs_peer: ClassVar[bool] = True
    #: Whether the generator's host must have a Congestion Manager.
    needs_cm: ClassVar[bool] = False
    #: Whether the generator spawns apps *on* the live peer object (rather
    #: than only passing ``peer.addr`` along).  The sharded engine keeps such
    #: host/peer pairs in the same shard.
    colocate_peer: ClassVar[bool] = False

    def __init__(self, scenario, spec: WorkloadSpec, params: Dict[str, Any],
                 rng: random.Random):
        host = scenario.hosts[spec.host]
        if self.needs_cm and host.cm is None:
            raise SpecError(
                f"workloads[{spec.label or spec.kind}]",
                f"workload {self.name!r} requires a Congestion Manager on host "
                f"{spec.host!r}; set cm=true on the host (or node) spec",
            )
        self.scenario = scenario
        self.spec = spec
        self.params = params
        self.rng = rng
        self.host = host
        self.peer = scenario.hosts[spec.peer] if spec.peer else None
        self.sim = scenario.sim
        self.label = spec.label or spec.kind
        self._stopped = False
        self._pending_events: List[Any] = []

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Arm the generator (called before the simulator runs)."""
        if self.spec.start > 0.0:
            self._schedule(self.spec.start, self._begin)
        else:
            self._begin()

    def _begin(self) -> None:
        """Start generating traffic; subclasses override."""

    def stop(self) -> None:
        """Tear the generator down after the horizon (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        for event in self._pending_events:
            if event.pending:
                event.cancel()
        self._pending_events.clear()
        self._teardown()

    def _teardown(self) -> None:
        """Detach whatever is still active; subclasses override."""

    def metrics(self) -> Dict[str, Any]:
        """Flat, JSON-able aggregate measurements for the scenario result."""
        return {}

    # --------------------------------------------------------------- helpers
    @property
    def window_end(self) -> Optional[float]:
        """Simulated time after which no new arrivals are generated."""
        return self.spec.stop

    def _schedule(self, delay: float, fn, *args) -> None:
        """Schedule ``fn`` through the event engine, tracked for teardown."""
        self._pending_events.append(self.sim.schedule(delay, fn, *args))
        if len(self._pending_events) > 64:
            self._pending_events = [e for e in self._pending_events if e.pending]

    def _arrival_allowed(self, at_time: float) -> bool:
        """Whether an arrival at ``at_time`` falls inside the active window."""
        return self.window_end is None or at_time <= self.window_end

    def spawn_app(self, app_name: str, host, peer, params: Dict[str, Any], label: str):
        """Attach one application instance from the registry, started.

        The instance goes through the exact same path a static ``apps:``
        entry does — registry lookup, schema-validated params, construction
        against live hosts — and is bound to the scenario's telemetry hub
        when one is attached, so dynamically-churned flows show up in event
        probes just like build-time ones.
        """
        from ..scenario.applications import get_application, validate_params
        from ..scenario.spec import AppSpec

        app_cls = get_application(app_name)
        app_spec = AppSpec(
            app=app_name,
            host=host.name,
            peer=peer.name if peer is not None else "",
            label=label,
            params=dict(params),
        )
        normalized = validate_params(app_name, app_spec.params, path=f"{label}.params")
        app = app_cls(host, peer, app_spec, normalized)
        app.label = label
        telemetry = self.scenario.telemetry
        if telemetry is not None:
            app.attach_telemetry(telemetry.hub)
        app.start()
        return app

    def detach_app(self, app) -> None:
        """Detach one previously spawned application instance."""
        app.detach()


WORKLOADS: Dict[str, Type[Workload]] = {}


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a generator to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a registry name")
    WORKLOADS[cls.name] = cls
    return cls


def get_workload(name: str) -> Type[Workload]:
    """Look up a workload class; raises KeyError for unknown kinds."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; registered: {', '.join(known_workloads())}")
    return WORKLOADS[name]


def known_workloads() -> List[str]:
    """Sorted registry names."""
    return sorted(WORKLOADS)


def validate_workload_params(kind: str, params: Dict[str, Any],
                             path: str = "params") -> Dict[str, Any]:
    """Validate ``params`` against the workload's schema; return defaults-applied dict."""
    return validate_params_cached(get_workload(kind), kind, params, path,
                                  _PARAMS_CACHE, _PARAMS_CACHE_MAX)


def describe_workloads() -> List[Tuple[str, str, List[str]]]:
    """(kind, description, parameter summaries) rows for the CLI listing."""
    rows = []
    for name in known_workloads():
        cls = WORKLOADS[name]
        param_lines = []
        for pname, param in sorted(cls.PARAMS.items()):
            bits = [param.type.__name__]
            if param.required:
                bits.append("required")
            else:
                bits.append(f"default={param.default!r}")
            if param.choices:
                bits.append(f"one of {'/'.join(map(str, param.choices))}")
            summary = f"{pname} ({', '.join(bits)})"
            if param.help:
                summary += f": {param.help}"
            param_lines.append(summary)
        rows.append((name, cls.description, param_lines))
    return rows
