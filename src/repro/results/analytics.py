"""Cross-PR analytics over the result store: compare labels, gate regressions.

The regression gate (:func:`check_regressions`) is deliberately conservative
about what it compares.  ``ops_per_sec`` is only meaningful between runs of
the same workload size on the same interpreter, so a candidate row is
checked against the best prior row whose

* benchmark **name** matches,
* **quick** flag matches (quick workloads are smaller, not just faster), and
* **machine fingerprint** matches — interpreter implementation, python
  major.minor series and platform string; a different machine or python
  changes absolute throughput far more than any code regression would (the
  checked-in ``BENCH_PR1..PR5`` history itself swings x2 between build
  containers on some rows).

Rows with no comparable baseline are reported as *skipped with a reason*,
never silently dropped and never failed: a CI quick run on python 3.12
cannot be honestly judged against a full-size 3.11 history, and pretending
otherwise would make the gate cry wolf until someone turned it off.  The
gate's math itself is pinned by fixture tests (a 30 % slowdown must trip at
``--max-regression 0.25``), which is where its correctness is proven.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .labels import label_sort_key
from .store import ResultStore

__all__ = ["Comparison", "CheckOutcome", "CheckResult", "compare_labels", "check_regressions"]


def _fingerprint(row: Dict) -> str:
    """The machine/interpreter identity a throughput number is tied to."""
    python = str(row.get("python") or "?")
    series = ".".join(python.split(".")[:2])
    return f"{row.get('implementation') or '?'}-{series}@{row.get('platform') or '?'}"


@dataclass
class Comparison:
    """One benchmark's A-vs-B row from ``compare``."""

    name: str
    a_ops_per_sec: Optional[float]
    b_ops_per_sec: Optional[float]
    a_speedup: Optional[float] = None
    b_speedup: Optional[float] = None

    @property
    def ratio(self) -> Optional[float]:
        """B throughput over A throughput (>1 means B is faster)."""
        if not self.a_ops_per_sec or self.b_ops_per_sec is None:
            return None
        return self.b_ops_per_sec / self.a_ops_per_sec


@dataclass
class CheckOutcome:
    """The gate's verdict on one candidate benchmark row."""

    name: str
    status: str  # 'ok' | 'regressed' | 'skipped'
    candidate_ops_per_sec: Optional[float] = None
    baseline_ops_per_sec: Optional[float] = None
    baseline_label: Optional[str] = None
    #: candidate / best-prior throughput (1.0 = unchanged, < 1 = slower).
    ratio: Optional[float] = None
    reason: str = ""


@dataclass
class CheckResult:
    """Everything ``check`` decided, plus the exit-code predicate."""

    candidate_label: str
    max_regression: float
    outcomes: List[CheckOutcome] = field(default_factory=list)

    @property
    def regressed(self) -> List[CheckOutcome]:
        return [outcome for outcome in self.outcomes if outcome.status == "regressed"]

    @property
    def compared(self) -> List[CheckOutcome]:
        return [outcome for outcome in self.outcomes if outcome.status != "skipped"]

    @property
    def ok(self) -> bool:
        return not self.regressed

    def summary(self) -> str:
        lines = [
            f"perf check: candidate {self.candidate_label}, "
            f"max regression {self.max_regression:.0%} "
            f"({len(self.compared)} compared, "
            f"{len(self.outcomes) - len(self.compared)} skipped)"
        ]
        for outcome in self.outcomes:
            if outcome.status == "skipped":
                lines.append(f"  SKIP {outcome.name:<22} {outcome.reason}")
            else:
                verdict = "FAIL" if outcome.status == "regressed" else "  ok"
                lines.append(
                    f"  {verdict} {outcome.name:<22} "
                    f"{outcome.candidate_ops_per_sec:>14,.0f} ops/s vs best "
                    f"{outcome.baseline_ops_per_sec:>14,.0f} ({outcome.baseline_label}) "
                    f"= x{outcome.ratio:.3f}"
                )
        verdict = "PASS" if self.ok else f"FAIL ({len(self.regressed)} row(s) regressed)"
        lines.append(f"perf check verdict: {verdict}")
        return "\n".join(lines)


def compare_labels(store: ResultStore, label_a: str, label_b: str) -> List[Comparison]:
    """Row-by-row throughput comparison of two ingested bench labels."""
    rows_a = {row["name"]: row for row in store.bench_rows(label=label_a)}
    rows_b = {row["name"]: row for row in store.bench_rows(label=label_b)}
    comparisons = []
    for name in sorted(set(rows_a) | set(rows_b)):
        a, b = rows_a.get(name), rows_b.get(name)
        comparisons.append(Comparison(
            name=name,
            a_ops_per_sec=a["ops_per_sec"] if a else None,
            b_ops_per_sec=b["ops_per_sec"] if b else None,
            a_speedup=a["speedup"] if a else None,
            b_speedup=b["speedup"] if b else None,
        ))
    return comparisons


def check_regressions(
    store: ResultStore,
    candidate_label: Optional[str] = None,
    max_regression: float = 0.25,
    loose: bool = False,
) -> CheckResult:
    """Gate the candidate label's rows against the best comparable history.

    ``candidate_label`` defaults to the highest label in trajectory order
    (``BENCH_PR6`` when the store holds ``BENCH_PR1..PR6``).  Every candidate
    row produces exactly one :class:`CheckOutcome`; the gate fails iff any
    row's throughput is more than ``max_regression`` below the best prior
    comparable row.  ``loose=True`` drops the platform component of the
    fingerprint (interpreter and workload size still must match) — useful
    for deliberate cross-machine comparisons, never for gating.
    """
    if not 0.0 <= max_regression < 1.0:
        raise ValueError("max_regression must be in [0, 1)")
    labels = store.bench_labels()
    if not labels:
        raise ValueError("store holds no benchmark runs to check")
    if candidate_label is None:
        candidate_label = labels[-1]
    elif candidate_label not in labels:
        raise ValueError(f"candidate label {candidate_label!r} not in store; have {labels}")

    def fingerprint(row: Dict) -> str:
        full = _fingerprint(row)
        return full.split("@")[0] if loose else full

    result = CheckResult(candidate_label=candidate_label, max_regression=max_regression)
    candidate_rows = store.bench_rows(label=candidate_label)
    candidate_key = label_sort_key(candidate_label)
    prior_labels = [label for label in labels if label_sort_key(label) < candidate_key]

    for row in candidate_rows:
        name = row["name"]
        ops_per_sec = row["ops_per_sec"]
        if not ops_per_sec or ops_per_sec <= 0:
            result.outcomes.append(CheckOutcome(
                name=name, status="skipped", reason="candidate row has no throughput"))
            continue
        comparable = [
            prior for prior in store.bench_rows(name=name)
            if prior["label"] in prior_labels
            and prior["ops_per_sec"] and prior["ops_per_sec"] > 0
            and bool(prior["quick"]) == bool(row["quick"])
            and fingerprint(prior) == fingerprint(row)
        ]
        if not comparable:
            result.outcomes.append(CheckOutcome(
                name=name,
                status="skipped",
                candidate_ops_per_sec=ops_per_sec,
                reason=(
                    "no prior row with the same workload size, interpreter and platform "
                    f"(quick={bool(row['quick'])}, {_fingerprint(row).split('@')[0]})"
                ),
            ))
            continue
        best = max(comparable, key=lambda prior: prior["ops_per_sec"])
        ratio = ops_per_sec / best["ops_per_sec"]
        regressed = (1.0 - ratio) > max_regression
        result.outcomes.append(CheckOutcome(
            name=name,
            status="regressed" if regressed else "ok",
            candidate_ops_per_sec=ops_per_sec,
            baseline_ops_per_sec=best["ops_per_sec"],
            baseline_label=best["label"],
            ratio=ratio,
        ))
    return result
