"""Render the store's cross-PR trajectory as HTML and CSV.

The CSV is the machine-readable long form — exactly one row per
``(benchmark, label)`` pair the store knows, so downstream tooling (and the
acceptance check in CI) can assert complete coverage.  The HTML is the
human view: a wide trajectory table (benchmarks x labels) with per-cell
deltas against the previous label, a speedup-vs-seed table, and summaries
of the ingested experiment / scenario / trace artifacts.  Both renderings
are plain tables built from the same queries — no plotting dependencies.
"""

from __future__ import annotations

import csv
import html
import io
from typing import Any, Dict, List, Optional

from .store import ResultStore

__all__ = ["render_csv", "render_html", "write_report_files"]

#: Column order of the CSV long form (one row per benchmark x label).
CSV_COLUMNS = (
    "benchmark", "label", "ops", "wall_s", "ops_per_sec", "baseline_ops_per_sec",
    "speedup", "quick", "python", "implementation", "git_revision", "timestamp", "source",
)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1f24; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; font-size: 0.85em; font-variant-numeric: tabular-nums; }
th, td { border: 1px solid #d5dbe0; padding: 0.3em 0.6em; text-align: right; }
th { background: #eef1f4; } td.name, th.name { text-align: left; font-weight: 600; }
td .delta { display: block; font-size: 0.85em; color: #5a6570; }
td.up .delta { color: #176b37; } td.down .delta { color: #a02818; }
td.missing { background: #f6f7f8; color: #9aa4ad; }
p.note { color: #5a6570; font-size: 0.9em; }
"""


def _fmt(value: Optional[float], pattern: str = "{:,.0f}") -> str:
    if value is None:
        return ""
    return pattern.format(value)


def render_csv(store: ResultStore) -> str:
    """The trajectory as CSV text: every benchmark row of every label."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    trajectory = store.bench_trajectory()
    for name in sorted(trajectory):
        for row in trajectory[name]:
            writer.writerow([
                name, row["label"], row["ops"], row["wall_s"], row["ops_per_sec"],
                row["baseline_ops_per_sec"], row["speedup"], int(bool(row["quick"])),
                row["python"], row["implementation"], row["git_revision"],
                row["timestamp"], row["source"],
            ])
    return buffer.getvalue()


def _trajectory_table(trajectory: Dict[str, List[Dict[str, Any]]], labels: List[str]) -> str:
    parts = ["<table><tr><th class='name'>benchmark</th>"]
    parts += [f"<th>{html.escape(label)}</th>" for label in labels]
    parts.append("</tr>")
    for name in sorted(trajectory):
        by_label = {row["label"]: row for row in trajectory[name]}
        parts.append(f"<tr><td class='name'>{html.escape(name)}</td>")
        previous = None
        for label in labels:
            row = by_label.get(label)
            if row is None or not row["ops_per_sec"]:
                parts.append("<td class='missing'>&mdash;</td>")
                continue
            ops = row["ops_per_sec"]
            cell_class, delta = "", ""
            if previous:
                ratio = ops / previous
                cell_class = "up" if ratio >= 1.02 else ("down" if ratio <= 0.98 else "")
                delta = f"<span class='delta'>x{ratio:.2f}</span>"
            parts.append(f"<td class='{cell_class}'>{_fmt(ops)}{delta}</td>")
            previous = ops
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _speedup_table(trajectory: Dict[str, List[Dict[str, Any]]], labels: List[str]) -> str:
    named = {
        name: {row["label"]: row["speedup"] for row in rows if row["speedup"] is not None}
        for name, rows in trajectory.items()
    }
    named = {name: by_label for name, by_label in named.items() if by_label}
    if not named:
        return "<p class='note'>No rows carry a seed-implementation baseline.</p>"
    parts = ["<table><tr><th class='name'>benchmark</th>"]
    parts += [f"<th>{html.escape(label)}</th>" for label in labels]
    parts.append("</tr>")
    for name in sorted(named):
        parts.append(f"<tr><td class='name'>{html.escape(name)}</td>")
        for label in labels:
            speedup = named[name].get(label)
            if speedup is None:
                parts.append("<td class='missing'>&mdash;</td>")
            else:
                parts.append(f"<td>x{speedup:.2f}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _experiments_section(store: ResultStore) -> str:
    entries = store.experiment_results()
    if not entries:
        return ""
    parts = ["<h2>Experiment artifacts</h2>",
             "<table><tr><th class='name'>experiment</th><th>label</th><th>rows</th>"
             "<th>seeds</th><th>jobs</th><th>trials (cached)</th><th>git revision</th></tr>"]
    for entry in entries:
        seeds = entry["seeds"]
        trials = "" if entry["trials"] is None else (
            f"{entry['trials']} ({entry['trials_from_cache'] or 0})")
        parts.append(
            f"<tr><td class='name'>{html.escape(entry['name'])}</td>"
            f"<td>{html.escape(entry['label'])}</td><td>{len(entry['rows'])}</td>"
            f"<td>{len(seeds) if seeds else ''}</td>"
            f"<td>{entry['jobs'] if entry['jobs'] is not None else ''}</td>"
            f"<td>{trials}</td>"
            f"<td>{html.escape(str(entry['git_revision'] or ''))[:12]}</td></tr>"
        )
    parts.append("</table>")
    return "".join(parts)


def _scenarios_section(store: ResultStore) -> str:
    entries = store.scenario_results()
    if not entries:
        return ""
    parts = ["<h2>Scenario results</h2>",
             "<table><tr><th class='name'>scenario</th><th>label</th><th>seed</th>"
             "<th>spec digest</th><th>simulated s</th><th>numeric metrics</th></tr>"]
    for entry in entries:
        n_metrics = len(store.metrics(scenario=entry["name"]))
        parts.append(
            f"<tr><td class='name'>{html.escape(entry['name'])}</td>"
            f"<td>{html.escape(entry['label'])}</td><td>{entry['seed']}</td>"
            f"<td>{html.escape(entry['spec_digest'][:12])}</td>"
            f"<td>{entry['duration_s']:.1f}</td><td>{n_metrics}</td></tr>"
        )
    parts.append("</table>")
    return "".join(parts)


def _traces_section(store: ResultStore) -> str:
    entries = store.trace_summary()
    if not entries:
        return ""
    parts = ["<h2>Telemetry traces</h2>",
             "<table><tr><th class='name'>trace</th><th>label</th><th>event</th>"
             "<th>records</th><th>t range (s)</th></tr>"]
    for entry in entries:
        t_range = ""
        if entry["t_min"] is not None and entry["t_max"] is not None:
            t_range = f"{entry['t_min']:.2f} &ndash; {entry['t_max']:.2f}"
        parts.append(
            f"<tr><td class='name'>{html.escape(entry['name'])}</td>"
            f"<td>{html.escape(entry['label'])}</td><td>{html.escape(entry['event'])}</td>"
            f"<td>{entry['n']}</td><td>{t_range}</td></tr>"
        )
    parts.append("</table>")
    return "".join(parts)


def render_html(store: ResultStore, title: str = "Result store trajectory") -> str:
    """The full HTML report over everything the store holds."""
    labels = store.bench_labels()
    trajectory = store.bench_trajectory()
    counts = store.counts()
    summary = ", ".join(f"{counts[table]} {table.replace('_', ' ')}" for table in
                        ("runs", "bench_rows", "experiment_results",
                         "scenario_results", "metrics", "trace_events"))
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class='note'>{html.escape(summary)}.</p>",
        "<h2>Throughput trajectory (ops/sec; delta vs previous label)</h2>",
    ]
    if trajectory:
        parts.append(_trajectory_table(trajectory, labels))
        parts.append("<h2>Speedup vs preserved seed implementation</h2>")
        parts.append(_speedup_table(trajectory, labels))
    else:
        parts.append("<p class='note'>No benchmark reports ingested yet.</p>")
    parts.append(_experiments_section(store))
    parts.append(_scenarios_section(store))
    parts.append(_traces_section(store))
    parts.append("</body></html>")
    return "".join(parts) + "\n"


def write_report_files(
    store: ResultStore,
    html_path: Optional[str] = None,
    csv_path: Optional[str] = None,
    title: str = "Result store trajectory",
) -> List[str]:
    """Write whichever renderings were requested; returns the paths written."""
    written = []
    if html_path:
        with open(html_path, "w", encoding="utf-8") as handle:
            handle.write(render_html(store, title=title))
        written.append(html_path)
    if csv_path:
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(render_csv(store))
        written.append(csv_path)
    return written
