"""Module entry point: ``PYTHONPATH=src python -m repro.results``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
