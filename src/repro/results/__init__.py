"""Fleet-scale result store: one indexed home for every measurement artifact.

PRs 1-5 made the repository produce measurement files — ``BENCH_*.json``
perf reports, experiment JSON artifacts with ``.meta.json`` provenance
sidecars, per-seed scenario results and JSON-lines telemetry traces — but
left them write-only.  This package aggregates all of them into a single
sqlite database (stdlib :mod:`sqlite3`, no dependencies) keyed by
``(label, git revision, benchmark/experiment name, spec_digest)`` and puts
analytics on top:

* :class:`~repro.results.store.ResultStore` — ingest + query;
* :mod:`repro.results.analytics` — cross-PR trajectories, ``compare`` and
  the ``check`` regression gate CI calls;
* :mod:`repro.results.report` — HTML / CSV trajectory rendering;
* :mod:`repro.results.labels` — BENCH label derivation (env var, checked-in
  history, git revision) so workflows stop hard-coding ``BENCH_PR<k>``;
* ``python -m repro.results`` — the CLI over all of the above.

See ``docs/result_store.md`` for the schema and the CI gate contract.
"""

from .analytics import CheckOutcome, CheckResult, Comparison, check_regressions, compare_labels
from .labels import derive_bench_label
from .store import IngestReport, ResultStore

__all__ = [
    "ResultStore",
    "IngestReport",
    "CheckOutcome",
    "CheckResult",
    "Comparison",
    "check_regressions",
    "compare_labels",
    "derive_bench_label",
]
