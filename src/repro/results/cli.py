"""Command-line front end: ``python -m repro.results``.

Subcommands::

    ingest PATH...              ingest artifacts (files or directories) into --db
    query                       inspect what the store holds (counts, runs, rows)
    compare A B                 row-by-row throughput comparison of two labels
    report                      render the cross-PR trajectory (--html / --csv)
    check                       the CI regression gate; exits 1 on regression

``compare``, ``report`` and ``check`` accept either a persistent ``--db``
or ``--baseline-dir DIR`` (ingest every ``BENCH_*.json`` under DIR into an
ephemeral in-memory store first) — the latter is what CI uses against the
checked-in history.  Exit codes: 0 success, 1 regression / ingest errors
with ``--strict``, 2 usage problems.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .analytics import check_regressions, compare_labels
from .report import write_report_files
from .store import IngestReport, ResultStore

__all__ = ["main"]

DEFAULT_DB = "results.sqlite"


def _open_store(args: argparse.Namespace, default_baseline_dir: Optional[str] = None) -> ResultStore:
    """A store for read-style commands: ``--db`` file or in-memory + baseline dir."""
    db = getattr(args, "db", None)
    baseline_dir = getattr(args, "baseline_dir", None)
    if db is None and baseline_dir is None:
        baseline_dir = default_baseline_dir
    store = ResultStore(db if db is not None else ":memory:")
    if baseline_dir is not None:
        outcome = store.ingest_baseline_dir(baseline_dir)
        for error in outcome.errors:
            print(f"warning: {error}", file=sys.stderr)
    return store


def _cmd_ingest(args: argparse.Namespace) -> int:
    outcome = IngestReport()
    with ResultStore(args.db) as store:
        for path in args.paths:
            if not os.path.exists(path):
                outcome.skipped += 1
                outcome.errors.append(f"{path}: no such file or directory")
                continue
            outcome.merge(store.ingest_path(path, label=args.label))
    print(outcome.summary())
    if args.strict and (outcome.skipped or outcome.errors):
        return 1
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        if args.name is not None:
            rows = store.bench_rows(label=args.label, name=args.name)
            if args.json:
                print(json.dumps(rows, indent=2, sort_keys=True))
            else:
                for row in rows:
                    speedup = f"  x{row['speedup']:.2f} vs seed" if row["speedup"] else ""
                    print(f"{row['label']:<12} {row['name']:<22} "
                          f"{row['ops_per_sec']:>14,.0f} ops/s{speedup}")
            return 0
        runs = store.runs(kind=args.kind, label=args.label)
        if args.json:
            print(json.dumps({"counts": store.counts(), "runs": runs}, indent=2, sort_keys=True))
            return 0
        counts = store.counts()
        print("store: " + ", ".join(f"{counts[k]} {k}" for k in sorted(counts)))
        for run in runs:
            print(f"  #{run['id']:<4} {run['kind']:<10} {run['label']:<14} {run['name']:<28} "
                  f"src={run['source'] or '-'}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    with _open_store(args, default_baseline_dir=".") as store:
        labels = store.bench_labels()
        for label in (args.label_a, args.label_b):
            if label not in labels:
                print(f"label {label!r} not in store; have {labels}", file=sys.stderr)
                return 2
        comparisons = compare_labels(store, args.label_a, args.label_b)
    print(f"{'benchmark':<22} {args.label_a:>14} {args.label_b:>14} {'ratio':>8}")
    for entry in comparisons:
        a = f"{entry.a_ops_per_sec:,.0f}" if entry.a_ops_per_sec is not None else "-"
        b = f"{entry.b_ops_per_sec:,.0f}" if entry.b_ops_per_sec is not None else "-"
        ratio = f"x{entry.ratio:.2f}" if entry.ratio is not None else "-"
        print(f"{entry.name:<22} {a:>14} {b:>14} {ratio:>8}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if not args.html and not args.csv:
        print("nothing to do: pass --html and/or --csv", file=sys.stderr)
        return 2
    with _open_store(args, default_baseline_dir=".") as store:
        if not store.bench_labels() and store.counts()["runs"] == 0:
            print("store is empty (no artifacts ingested)", file=sys.stderr)
            return 2
        written = write_report_files(store, html_path=args.html, csv_path=args.csv,
                                     title=args.title)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    with _open_store(args, default_baseline_dir=".") as store:
        candidate = args.candidate
        if candidate is not None and (os.path.sep in candidate or os.path.exists(candidate)):
            try:
                with open(candidate, "r", encoding="utf-8") as handle:
                    report = json.load(handle)
                label = report["meta"]["label"]
            except (OSError, ValueError, KeyError, TypeError) as exc:
                print(f"cannot read candidate report {candidate!r}: {exc}", file=sys.stderr)
                return 2
            store.ingest_bench_report(report, source=os.path.basename(candidate))
            candidate = label
        try:
            result = check_regressions(store, candidate_label=candidate,
                                       max_regression=args.max_regression, loose=args.loose)
        except ValueError as exc:
            print(f"check: {exc}", file=sys.stderr)
            return 2
    if not args.quiet or not result.ok:
        print(result.summary())
    return 0 if result.ok else 1


def _add_store_arguments(parser: argparse.ArgumentParser, with_baseline: bool = True) -> None:
    parser.add_argument("--db", default=None, metavar="PATH",
                        help="sqlite store to read (default: ephemeral in-memory store)")
    if with_baseline:
        parser.add_argument("--baseline-dir", default=None, metavar="DIR",
                            help="ingest every BENCH_*.json under DIR first "
                                 "(default '.' when --db is not given)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.results",
        description="Fleet-scale result store: ingest, query and gate measurement artifacts",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ingest = sub.add_parser("ingest", help="ingest artifact files/directories into the store")
    ingest.add_argument("paths", nargs="+", metavar="PATH",
                        help="BENCH_*.json, experiment/scenario JSON, .jsonl traces, or dirs")
    ingest.add_argument("--db", default=DEFAULT_DB, metavar="PATH",
                        help=f"sqlite store path (default: {DEFAULT_DB})")
    ingest.add_argument("--label", default=None,
                        help="override the PR label recorded for the ingested artifacts")
    ingest.add_argument("--strict", action="store_true",
                        help="exit 1 if any file was skipped or corrupt")
    ingest.set_defaults(func=_cmd_ingest)

    query = sub.add_parser("query", help="inspect runs and benchmark rows")
    _add_store_arguments(query)
    query.add_argument("--kind", choices=("bench", "experiment", "scenario", "trace"),
                       default=None, help="filter runs by artifact family")
    query.add_argument("--label", default=None, help="filter by PR/bench label")
    query.add_argument("--name", default=None,
                       help="show one benchmark's trajectory instead of the run list")
    query.add_argument("--json", action="store_true", help="machine-readable output")
    query.set_defaults(func=_cmd_query)

    compare = sub.add_parser("compare", help="compare two bench labels row by row")
    compare.add_argument("label_a", help="baseline label (e.g. BENCH_PR5)")
    compare.add_argument("label_b", help="candidate label (e.g. BENCH_PR6)")
    _add_store_arguments(compare)
    compare.set_defaults(func=_cmd_compare)

    report = sub.add_parser("report", help="render the cross-PR trajectory")
    _add_store_arguments(report)
    report.add_argument("--html", default=None, metavar="FILE", help="write the HTML report here")
    report.add_argument("--csv", default=None, metavar="FILE", help="write the CSV long form here")
    report.add_argument("--title", default="Result store trajectory", help="HTML report title")
    report.set_defaults(func=_cmd_report)

    check = sub.add_parser(
        "check", help="regression gate: exit 1 when a tracked row regresses")
    _add_store_arguments(check)
    check.add_argument("--candidate", default=None, metavar="LABEL_OR_PATH",
                       help="label (or BENCH json file, ingested first) to judge; "
                            "default: the highest label in trajectory order")
    check.add_argument("--max-regression", type=float, default=0.25, metavar="FRAC",
                       help="tolerated fractional throughput drop vs the best prior "
                            "comparable row (default: 0.25)")
    check.add_argument("--loose", action="store_true",
                       help="ignore the platform component of the machine fingerprint "
                            "(cross-machine comparison; not meaningful as a gate)")
    check.add_argument("--quiet", action="store_true", help="print only on failure")
    check.set_defaults(func=_cmd_check)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if getattr(args, "max_regression", None) is not None:
        if not 0.0 <= args.max_regression < 1.0:
            parser.error("--max-regression must be in [0, 1)")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
