"""sqlite-backed result store: ingest every measurement artifact the repo emits.

One :class:`ResultStore` holds four artifact families in one indexed schema:

* **bench** — ``BENCH_*.json`` perf-harness reports (one ``bench_rows`` row
  per benchmark, keyed by label + name);
* **experiment** — experiment JSON artifacts plus their ``.meta.json``
  provenance sidecars (seeds, jobs, git revision, cache counters);
* **scenario** — per-seed ``ScenarioResult`` JSON files, with every numeric
  app/link/host/workload metric flattened into a queryable ``metrics`` table
  keyed by ``spec_digest``;
* **trace** — JSON-lines telemetry files produced by
  :class:`repro.telemetry.recorders.JsonlSink`.

Ingestion is idempotent: every run row carries a sha256 content digest and
re-ingesting identical content is counted as a dedup, not a duplicate row.
Corrupt or truncated files are tolerated — they increment
:attr:`IngestReport.skipped` with a recorded reason instead of aborting a
batch (fleet ingestion must survive one torn artifact).
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .labels import current_pr_label, sort_labels

__all__ = ["ResultStore", "IngestReport", "classify_payload"]

#: Schema version recorded in ``store_meta``; bump on incompatible changes.
SCHEMA_VERSION = 1

_SCHEMA = """
PRAGMA foreign_keys = ON;

CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS runs (
    id             INTEGER PRIMARY KEY,
    kind           TEXT NOT NULL CHECK (kind IN ('bench', 'experiment', 'scenario', 'trace')),
    label          TEXT NOT NULL,
    name           TEXT NOT NULL,
    git_revision   TEXT,
    python         TEXT,
    implementation TEXT,
    platform       TEXT,
    quick          INTEGER,
    timestamp      TEXT,
    source         TEXT,
    digest         TEXT NOT NULL,
    meta           TEXT NOT NULL DEFAULT '{}',
    ingested_at    TEXT NOT NULL,
    UNIQUE (kind, label, name, digest)
);
CREATE INDEX IF NOT EXISTS idx_runs_kind_label ON runs (kind, label);

CREATE TABLE IF NOT EXISTS bench_rows (
    run_id               INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    label                TEXT NOT NULL,
    name                 TEXT NOT NULL,
    ops                  INTEGER,
    wall_s               REAL,
    ops_per_sec          REAL,
    baseline_wall_s      REAL,
    baseline_ops_per_sec REAL,
    speedup              REAL,
    notes                TEXT NOT NULL DEFAULT '',
    extra                TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (run_id, name)
);
CREATE INDEX IF NOT EXISTS idx_bench_rows_name ON bench_rows (name, label);

CREATE TABLE IF NOT EXISTS experiment_results (
    run_id            INTEGER PRIMARY KEY REFERENCES runs (id) ON DELETE CASCADE,
    name              TEXT NOT NULL,
    title             TEXT NOT NULL,
    payload_digest    TEXT NOT NULL,
    columns           TEXT NOT NULL,
    rows              TEXT NOT NULL,
    series            TEXT NOT NULL,
    notes             TEXT NOT NULL,
    seeds             TEXT,
    jobs              INTEGER,
    trials            INTEGER,
    trials_from_cache INTEGER,
    wall_clock_s      REAL
);
CREATE INDEX IF NOT EXISTS idx_experiment_results_name ON experiment_results (name);

CREATE TABLE IF NOT EXISTS scenario_results (
    run_id      INTEGER PRIMARY KEY REFERENCES runs (id) ON DELETE CASCADE,
    name        TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    spec_digest TEXT NOT NULL,
    duration_s  REAL NOT NULL,
    payload     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_scenario_results_key ON scenario_results (name, seed, spec_digest);

CREATE TABLE IF NOT EXISTS metrics (
    run_id      INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    label       TEXT NOT NULL,
    scenario    TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    spec_digest TEXT NOT NULL,
    scope       TEXT NOT NULL,
    entity      TEXT NOT NULL,
    metric      TEXT NOT NULL,
    value       REAL NOT NULL,
    PRIMARY KEY (run_id, scope, entity, metric)
);
CREATE INDEX IF NOT EXISTS idx_metrics_lookup ON metrics (scenario, scope, metric, label);

CREATE TABLE IF NOT EXISTS trace_events (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    line   INTEGER NOT NULL,
    t      REAL,
    event  TEXT NOT NULL,
    series TEXT,
    value  REAL,
    fields TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (run_id, line)
);
CREATE INDEX IF NOT EXISTS idx_trace_events_event ON trace_events (event, series);
"""


@dataclass
class IngestReport:
    """Counters for one ingest batch; addable so batches fold together."""

    ingested: int = 0
    deduped: int = 0
    skipped: int = 0
    rows: int = 0
    errors: List[str] = field(default_factory=list)

    def merge(self, other: "IngestReport") -> "IngestReport":
        self.ingested += other.ingested
        self.deduped += other.deduped
        self.skipped += other.skipped
        self.rows += other.rows
        self.errors.extend(other.errors)
        return self

    def summary(self) -> str:
        text = (
            f"ingested {self.ingested} run(s) ({self.rows} row(s)), "
            f"{self.deduped} duplicate(s), {self.skipped} skipped"
        )
        if self.errors:
            text += ":\n" + "\n".join(f"  - {error}" for error in self.errors)
        return text


def _sha256_of(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S%z")


def classify_payload(payload: Any) -> Optional[str]:
    """Which artifact family a deserialized JSON document belongs to.

    Returns ``'bench'``, ``'scenario'``, ``'experiment'``, ``'experiment-meta'``
    (a provenance sidecar, ingested with its payload rather than alone) or
    ``None`` for shapes the store does not understand.
    """
    if not isinstance(payload, dict):
        return None
    if isinstance(payload.get("benchmarks"), dict) and isinstance(payload.get("meta"), dict):
        return "bench"
    if {"name", "seed", "spec_digest", "duration_s", "apps"}.issubset(payload):
        return "scenario"
    if {"name", "title", "columns", "rows"}.issubset(payload):
        return "experiment"
    if {"experiment", "trials"}.issubset(payload):
        return "experiment-meta"
    return None


class ResultStore:
    """One sqlite database aggregating benches, experiments, scenarios, traces.

    ``path`` may be a filesystem path (created on first use) or ``":memory:"``
    for an ephemeral store (the ``check``/``compare`` CLI default).  Usable as
    a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str = "results.sqlite"):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path)) if path != ":memory:" else None
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._db = sqlite3.connect(path)
        self._db.row_factory = sqlite3.Row
        self._db.executescript(_SCHEMA)
        self._db.execute(
            "INSERT OR IGNORE INTO store_meta (key, value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        self._db.commit()

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._db is not None:
            self._db.close()
            self._db = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # ingestion                                                          #
    # ------------------------------------------------------------------ #
    def _insert_run(
        self,
        kind: str,
        label: str,
        name: str,
        digest: str,
        *,
        git_revision: Optional[str] = None,
        python: Optional[str] = None,
        implementation: Optional[str] = None,
        platform: Optional[str] = None,
        quick: Optional[bool] = None,
        timestamp: Optional[str] = None,
        source: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Optional[int]:
        """Insert a run row; ``None`` means identical content already exists."""
        try:
            cursor = self._db.execute(
                "INSERT INTO runs (kind, label, name, git_revision, python, implementation,"
                " platform, quick, timestamp, source, digest, meta, ingested_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    kind, label, name, git_revision, python, implementation, platform,
                    None if quick is None else int(quick), timestamp, source, digest,
                    json.dumps(meta or {}, sort_keys=True), _now(),
                ),
            )
        except sqlite3.IntegrityError:
            return None
        return cursor.lastrowid

    def ingest_bench_report(
        self, report: Dict[str, Any], source: Optional[str] = None, label: Optional[str] = None
    ) -> IngestReport:
        """Ingest one perf-harness report dict (the ``BENCH_*.json`` shape)."""
        outcome = IngestReport()
        meta = report.get("meta")
        benchmarks = report.get("benchmarks")
        if not isinstance(meta, dict) or not isinstance(benchmarks, dict):
            outcome.skipped += 1
            outcome.errors.append(f"{source or 'bench report'}: missing 'meta'/'benchmarks'")
            return outcome
        label = label or str(meta.get("label") or "unlabelled")
        run_id = self._insert_run(
            "bench", label, label, _sha256_of(report),
            git_revision=meta.get("git_revision"),
            python=meta.get("python"),
            implementation=meta.get("implementation"),
            platform=meta.get("platform"),
            quick=bool(meta.get("quick", False)),
            timestamp=meta.get("timestamp"),
            source=source,
            meta={k: v for k, v in meta.items() if k not in
                  ("label", "python", "implementation", "platform", "quick", "timestamp")},
        )
        if run_id is None:
            outcome.deduped += 1
            return outcome
        known = ("ops", "wall_s", "ops_per_sec", "baseline_wall_s",
                 "baseline_ops_per_sec", "speedup", "notes")
        for name in sorted(benchmarks):
            payload = benchmarks[name]
            if not isinstance(payload, dict):
                outcome.errors.append(f"{source or label}: benchmark {name!r} is not an object")
                outcome.skipped += 1
                continue
            extra = {k: v for k, v in payload.items() if k not in known}
            self._db.execute(
                "INSERT INTO bench_rows (run_id, label, name, ops, wall_s, ops_per_sec,"
                " baseline_wall_s, baseline_ops_per_sec, speedup, notes, extra)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id, label, name, payload.get("ops"), payload.get("wall_s"),
                    payload.get("ops_per_sec"), payload.get("baseline_wall_s"),
                    payload.get("baseline_ops_per_sec"), payload.get("speedup"),
                    str(payload.get("notes", "")), json.dumps(extra, sort_keys=True),
                ),
            )
            outcome.rows += 1
        self._db.commit()
        outcome.ingested += 1
        return outcome

    def ingest_experiment_payload(
        self,
        payload: Dict[str, Any],
        provenance: Optional[Dict[str, Any]] = None,
        source: Optional[str] = None,
        label: Optional[str] = None,
    ) -> IngestReport:
        """Ingest one experiment artifact payload plus its optional sidecar."""
        outcome = IngestReport()
        provenance = provenance or {}
        name = str(payload.get("name") or "unknown")
        label = label or os.environ.get("REPRO_RESULT_LABEL") or current_pr_label()
        seeds = provenance.get("seeds")
        run_id = self._insert_run(
            "experiment", label, name, _sha256_of(payload),
            git_revision=provenance.get("git_revision"),
            python=provenance.get("python"),
            timestamp=provenance.get("timestamp"),
            source=source,
            meta={"jobs": provenance.get("jobs"), "seeds": seeds},
        )
        if run_id is None:
            outcome.deduped += 1
            return outcome
        self._db.execute(
            "INSERT INTO experiment_results (run_id, name, title, payload_digest, columns,"
            " rows, series, notes, seeds, jobs, trials, trials_from_cache, wall_clock_s)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                run_id, name, str(payload.get("title", "")), _sha256_of(payload),
                json.dumps(payload.get("columns", []), sort_keys=True),
                json.dumps(payload.get("rows", []), sort_keys=True),
                json.dumps(payload.get("series", {}), sort_keys=True),
                json.dumps(payload.get("notes", []), sort_keys=True),
                None if seeds is None else json.dumps(seeds),
                provenance.get("jobs"), provenance.get("trials"),
                provenance.get("trials_from_cache"), provenance.get("wall_clock_s"),
            ),
        )
        self._db.commit()
        outcome.ingested += 1
        outcome.rows += len(payload.get("rows") or [])
        return outcome

    def ingest_scenario_payload(
        self, payload: Dict[str, Any], source: Optional[str] = None, label: Optional[str] = None
    ) -> IngestReport:
        """Ingest one per-seed ScenarioResult payload, flattening its metrics."""
        outcome = IngestReport()
        name = str(payload.get("name") or "unknown")
        seed = int(payload.get("seed") or 0)
        spec_digest = str(payload.get("spec_digest") or "")
        label = label or os.environ.get("REPRO_RESULT_LABEL") or current_pr_label()
        run_id = self._insert_run(
            "scenario", label, f"{name}.seed{seed}", _sha256_of(payload),
            source=source, meta={"spec_digest": spec_digest},
        )
        if run_id is None:
            outcome.deduped += 1
            return outcome
        self._db.execute(
            "INSERT INTO scenario_results (run_id, name, seed, spec_digest, duration_s, payload)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (
                run_id, name, seed, spec_digest, float(payload.get("duration_s") or 0.0),
                json.dumps(payload, sort_keys=True, separators=(",", ":")),
            ),
        )
        for scope, entity_key, entries in (
            ("app", "label", payload.get("apps")),
            ("link", "link", payload.get("links")),
            ("host", "host", payload.get("hosts")),
            ("workload", "label", payload.get("workloads")),
        ):
            if not isinstance(entries, list):
                continue
            for entry in entries:
                if not isinstance(entry, dict):
                    continue
                entity = str(entry.get(entity_key, ""))
                values = entry.get("metrics") if isinstance(entry.get("metrics"), dict) else entry
                for metric, value in values.items():
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        self._db.execute(
                            "INSERT OR REPLACE INTO metrics (run_id, label, scenario, seed,"
                            " spec_digest, scope, entity, metric, value)"
                            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                            (run_id, label, name, seed, spec_digest, scope, entity,
                             str(metric), float(value)),
                        )
                        outcome.rows += 1
        self._db.commit()
        outcome.ingested += 1
        return outcome

    def ingest_trace(
        self, path: str, source: Optional[str] = None, label: Optional[str] = None
    ) -> IngestReport:
        """Ingest a JSON-lines telemetry trace (the :class:`JsonlSink` format).

        Torn trailing lines (a simulation killed mid-write) are tolerated:
        each bad line is counted, good lines around it still land.
        """
        outcome = IngestReport()
        label = label or os.environ.get("REPRO_RESULT_LABEL") or current_pr_label()
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            outcome.skipped += 1
            outcome.errors.append(f"{path}: {exc}")
            return outcome
        name = os.path.basename(path)
        run_id = self._insert_run(
            "trace", label, name, hashlib.sha256(blob).hexdigest(),
            source=source or path,
        )
        if run_id is None:
            outcome.deduped += 1
            return outcome
        bad_lines = 0
        for index, raw in enumerate(blob.splitlines()):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
                if not isinstance(record, dict):
                    raise ValueError("not an object")
                event = str(record.pop("event"))
            except (ValueError, KeyError):
                bad_lines += 1
                continue
            t = record.pop("t", None)
            series = record.pop("series", None)
            value = record.pop("value", None)
            self._db.execute(
                "INSERT INTO trace_events (run_id, line, t, event, series, value, fields)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id, index, None if t is None else float(t), event,
                    None if series is None else str(series),
                    None if value is None else float(value),
                    json.dumps(record, sort_keys=True, separators=(",", ":")),
                ),
            )
            outcome.rows += 1
        if bad_lines:
            self._db.execute(
                "UPDATE runs SET meta = ? WHERE id = ?",
                (json.dumps({"bad_lines": bad_lines}), run_id),
            )
            outcome.errors.append(f"{path}: {bad_lines} unparseable line(s) skipped")
        self._db.commit()
        outcome.ingested += 1
        return outcome

    def ingest_file(self, path: str, label: Optional[str] = None) -> IngestReport:
        """Ingest one artifact file, dispatching on its content shape.

        ``*.jsonl`` files are telemetry traces; ``*.meta.json`` sidecars are
        picked up with their payload file and skipped when passed alone;
        everything else is classified by :func:`classify_payload`.  Corrupt
        JSON is a counted skip, never an exception.
        """
        outcome = IngestReport()
        if path.endswith(".jsonl"):
            return self.ingest_trace(path, source=os.path.basename(path), label=label)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            outcome.skipped += 1
            outcome.errors.append(f"{path}: unreadable or corrupt JSON ({exc})")
            return outcome
        kind = classify_payload(payload)
        source = os.path.basename(path)
        if kind == "bench":
            return self.ingest_bench_report(payload, source=source, label=label)
        if kind == "scenario":
            return self.ingest_scenario_payload(payload, source=source, label=label)
        if kind == "experiment":
            provenance = None
            base, ext = os.path.splitext(path)
            meta_path = base + ".meta" + ext
            if os.path.exists(meta_path):
                try:
                    with open(meta_path, "r", encoding="utf-8") as handle:
                        sidecar = json.load(handle)
                    if isinstance(sidecar, dict):
                        provenance = sidecar
                except (OSError, ValueError) as exc:
                    outcome.errors.append(f"{meta_path}: sidecar ignored ({exc})")
            return outcome.merge(self.ingest_experiment_payload(
                payload, provenance=provenance, source=source, label=label))
        if kind == "experiment-meta":
            outcome.skipped += 1
            outcome.errors.append(f"{path}: provenance sidecar (ingested with its payload file)")
            return outcome
        outcome.skipped += 1
        outcome.errors.append(f"{path}: unrecognized artifact shape")
        return outcome

    def ingest_path(self, path: str, label: Optional[str] = None) -> IngestReport:
        """Ingest a file, or every ``*.json`` / ``*.jsonl`` under a directory."""
        if not os.path.isdir(path):
            return self.ingest_file(path, label=label)
        outcome = IngestReport()
        for dirpath, _dirnames, filenames in sorted(os.walk(path)):
            for filename in sorted(filenames):
                if filename.endswith(".meta.json"):
                    continue
                if filename.endswith(".json") or filename.endswith(".jsonl"):
                    outcome.merge(self.ingest_file(os.path.join(dirpath, filename), label=label))
        return outcome

    # ------------------------------------------------------------------ #
    # queries                                                            #
    # ------------------------------------------------------------------ #
    def runs(self, kind: Optional[str] = None, label: Optional[str] = None) -> List[Dict[str, Any]]:
        """Run rows (most recent last), optionally filtered by kind/label."""
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if label is not None:
            clauses.append("label = ?")
            params.append(label)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        cursor = self._db.execute(f"SELECT * FROM runs{where} ORDER BY id", params)
        return [dict(row) for row in cursor.fetchall()]

    def bench_labels(self) -> List[str]:
        """Every bench label present, in trajectory order."""
        cursor = self._db.execute("SELECT DISTINCT label FROM runs WHERE kind = 'bench'")
        return sort_labels(row["label"] for row in cursor.fetchall())

    def bench_rows(
        self, label: Optional[str] = None, name: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Benchmark rows joined with their run context.

        When the same ``(label, name)`` was ingested more than once (a label
        regenerated with different content), only the **most recently
        ingested** run per label is reported — the store keeps the history,
        queries see the latest word.
        """
        clauses, params = [], []
        if label is not None:
            clauses.append("b.label = ?")
            params.append(label)
        if name is not None:
            clauses.append("b.name = ?")
            params.append(name)
        where = f" AND {' AND '.join(clauses)}" if clauses else ""
        cursor = self._db.execute(
            "SELECT b.*, r.git_revision, r.python, r.implementation, r.platform, r.quick,"
            " r.timestamp, r.source"
            " FROM bench_rows b JOIN runs r ON r.id = b.run_id"
            " WHERE r.id IN (SELECT MAX(id) FROM runs WHERE kind = 'bench' GROUP BY label)"
            f"{where} ORDER BY b.name, b.label",
            params,
        )
        return [dict(row) for row in cursor.fetchall()]

    def bench_names(self) -> List[str]:
        """Every benchmark name that appears in any ingested report."""
        cursor = self._db.execute("SELECT DISTINCT name FROM bench_rows ORDER BY name")
        return [row["name"] for row in cursor.fetchall()]

    def bench_trajectory(self) -> Dict[str, List[Dict[str, Any]]]:
        """``{benchmark name: [row per label, trajectory-ordered]}``."""
        ordered = self.bench_labels()
        trajectory: Dict[str, List[Dict[str, Any]]] = {}
        rows = self.bench_rows()
        by_key = {(row["name"], row["label"]): row for row in rows}
        for row in rows:
            trajectory.setdefault(row["name"], [])
        for name in trajectory:
            trajectory[name] = [
                by_key[(name, label)] for label in ordered if (name, label) in by_key
            ]
        return trajectory

    def experiment_results(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Experiment artifact rows (columns/rows/series decoded from JSON)."""
        clauses = " WHERE e.name = ?" if name is not None else ""
        cursor = self._db.execute(
            "SELECT e.*, r.label, r.git_revision, r.timestamp, r.source"
            " FROM experiment_results e JOIN runs r ON r.id = e.run_id"
            f"{clauses} ORDER BY e.run_id",
            [name] if name is not None else [],
        )
        decoded = []
        for row in cursor.fetchall():
            entry = dict(row)
            for key in ("columns", "rows", "series", "notes"):
                entry[key] = json.loads(entry[key])
            entry["seeds"] = json.loads(entry["seeds"]) if entry["seeds"] else None
            decoded.append(entry)
        return decoded

    def scenario_results(
        self, name: Optional[str] = None, seed: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Scenario result rows; ``payload`` is the decoded result document."""
        clauses, params = [], []
        if name is not None:
            clauses.append("s.name = ?")
            params.append(name)
        if seed is not None:
            clauses.append("s.seed = ?")
            params.append(seed)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        cursor = self._db.execute(
            "SELECT s.*, r.label, r.timestamp, r.source"
            " FROM scenario_results s JOIN runs r ON r.id = s.run_id"
            f"{where} ORDER BY s.name, s.seed, s.run_id",
            params,
        )
        decoded = []
        for row in cursor.fetchall():
            entry = dict(row)
            entry["payload"] = json.loads(entry["payload"])
            decoded.append(entry)
        return decoded

    def metrics(
        self,
        scenario: Optional[str] = None,
        scope: Optional[str] = None,
        metric: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Flattened numeric scenario metrics, filterable by name/scope/metric."""
        clauses, params = [], []
        for column, value in (("scenario", scenario), ("scope", scope), ("metric", metric)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        cursor = self._db.execute(
            f"SELECT * FROM metrics{where} ORDER BY scenario, seed, scope, entity, metric",
            params,
        )
        return [dict(row) for row in cursor.fetchall()]

    def trace_summary(self) -> List[Dict[str, Any]]:
        """Per-trace event counts: ``(label, name, event, n, t_min, t_max)``."""
        cursor = self._db.execute(
            "SELECT r.label, r.name, e.event, COUNT(*) AS n, MIN(e.t) AS t_min, MAX(e.t) AS t_max"
            " FROM trace_events e JOIN runs r ON r.id = e.run_id"
            " GROUP BY r.id, e.event ORDER BY r.id, e.event"
        )
        return [dict(row) for row in cursor.fetchall()]

    def counts(self) -> Dict[str, int]:
        """Row counts per table — the ``query`` CLI's one-line health check."""
        out = {}
        for table in ("runs", "bench_rows", "experiment_results", "scenario_results",
                      "metrics", "trace_events"):
            cursor = self._db.execute(f"SELECT COUNT(*) AS n FROM {table}")  # noqa: S608
            out[table] = cursor.fetchone()["n"]
        return out

    # ------------------------------------------------------------------ #
    # convenience                                                        #
    # ------------------------------------------------------------------ #
    def ingest_baseline_dir(
        self, directory: str, pattern_labels: Optional[Sequence[str]] = None
    ) -> IngestReport:
        """Ingest every ``BENCH_*.json`` directly under ``directory``.

        This is the ``check --baseline-dir`` primitive: it deliberately does
        *not* recurse (the repo root holds the checked-in history; trial
        caches and artifact dirs below it are not benchmark baselines).
        """
        outcome = IngestReport()
        try:
            entries = sorted(os.listdir(directory))
        except OSError as exc:
            outcome.skipped += 1
            outcome.errors.append(f"{directory}: {exc}")
            return outcome
        for filename in entries:
            if filename.startswith("BENCH_") and filename.endswith(".json"):
                if pattern_labels is not None and filename[: -len(".json")] not in pattern_labels:
                    continue
                outcome.merge(self.ingest_file(os.path.join(directory, filename)))
        return outcome


def iter_bench_files(directory: str) -> Iterable[Tuple[str, str]]:
    """``(label, path)`` for every ``BENCH_*.json`` directly under ``directory``."""
    try:
        entries = sorted(os.listdir(directory))
    except OSError:
        return
    for filename in entries:
        if filename.startswith("BENCH_") and filename.endswith(".json"):
            yield filename[: -len(".json")], os.path.join(directory, filename)
