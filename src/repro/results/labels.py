"""Derive PR / benchmark labels instead of hard-coding ``BENCH_PR<k>``.

Through PR 5 the label was a literal in three places (the harness default,
the ``__main__`` default and the CI workflow's artifact name), all of which
needed hand-editing every PR.  The rules here replace that:

1. an explicit environment variable always wins (``REPRO_BENCH_LABEL`` for
   the full bench label, ``REPRO_PR_LABEL`` for the PR part);
2. otherwise the next PR number is inferred from the checked-in
   ``BENCH_PR<k>.json`` history: the working tree that produced
   ``BENCH_PR1..PR5`` is, by definition, PR 6;
3. otherwise the git revision identifies the run; ``local`` is the last
   resort outside a checkout.
"""

from __future__ import annotations

import os
import re
import subprocess
from typing import Iterable, Optional, Tuple

__all__ = ["current_pr_label", "derive_bench_label", "label_sort_key"]

_BENCH_FILE_RE = re.compile(r"^BENCH_PR(\d+)\.json$")
_PR_LABEL_RE = re.compile(r"^(?:BENCH_)?PR(\d+)$")


def _repo_root() -> str:
    """The repository root inferred from this module's location (src/repro/results)."""
    return os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", ".."))


def _git_short_revision() -> Optional[str]:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def _max_bench_pr(directory: str) -> Optional[int]:
    try:
        entries = os.listdir(directory)
    except OSError:
        return None
    numbers = [int(m.group(1)) for m in map(_BENCH_FILE_RE.match, entries) if m]
    return max(numbers) if numbers else None


def current_pr_label(baseline_dir: Optional[str] = None) -> str:
    """The label of the PR the working tree belongs to (e.g. ``"PR6"``).

    Looks for ``BENCH_PR<k>.json`` history in ``baseline_dir`` (default: the
    current directory, then the repository root) and returns the *next*
    number — the tree that carries history up to PR ``k`` is producing
    artifacts for PR ``k+1``.
    """
    env = os.environ.get("REPRO_PR_LABEL")
    if env:
        return env
    candidates = [baseline_dir] if baseline_dir is not None else [os.getcwd(), _repo_root()]
    for directory in candidates:
        highest = _max_bench_pr(directory)
        if highest is not None:
            return f"PR{highest + 1}"
    revision = _git_short_revision()
    if revision:
        return f"git-{revision}"
    return "local"


def derive_bench_label(baseline_dir: Optional[str] = None) -> str:
    """The label for a fresh benchmark report (e.g. ``"BENCH_PR6"``)."""
    env = os.environ.get("REPRO_BENCH_LABEL")
    if env:
        return env
    return f"BENCH_{current_pr_label(baseline_dir)}"


def label_sort_key(label: str) -> Tuple[int, int, str]:
    """Order labels for trajectories: ``BENCH_PR2`` < ``BENCH_PR10`` < others.

    PR-numbered labels sort numerically first; anything else (git revisions,
    ad-hoc labels) sorts after them, alphabetically.
    """
    match = _PR_LABEL_RE.match(label)
    if match:
        return (0, int(match.group(1)), label)
    return (1, 0, label)


def sort_labels(labels: Iterable[str]) -> list:
    """Unique labels in trajectory order."""
    return sorted(set(labels), key=label_sort_key)
