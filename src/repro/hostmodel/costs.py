"""End-host CPU cost model.

The paper's Figures 5 and 6 and Table 1 measure how much CPU time the CM's
user-space adaptation API costs relative to in-kernel TCP: extra system
calls, user/kernel boundary crossings, data copies, ``gettimeofday`` calls,
``select`` and ``ioctl`` operations on the CM control socket.

Since this reproduction runs on a simulator rather than a 600 MHz
Pentium III, these costs are modelled explicitly: every component charges
named operations to a :class:`~repro.hostmodel.ledger.CpuLedger` using the
per-operation microsecond prices in :class:`CostModel`.  The default prices
are calibrated so that the *relative* ordering and approximate ratios of the
paper's per-packet costs are preserved (in-kernel TCP cheapest, buffered
CM-UDP next, ALF request/callback API most expensive) — the absolute
numbers are not meaningful beyond that.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["CostModel", "OPERATIONS"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU prices, in microseconds of a circa-2000 host CPU.

    Attributes correspond to the operation names accepted by
    :meth:`repro.hostmodel.ledger.CpuLedger.charge_operation`.
    """

    #: Base cost of trapping into the kernel for any system call.
    syscall: float = 3.0
    #: Additional cost per extra user/kernel boundary crossing beyond the
    #: trap itself (argument copy-in/out, scheduling effects).
    boundary_crossing: float = 1.5
    #: Cost per kilobyte copied between kernel and user space.
    copy_per_kb: float = 2.2
    #: gettimeofday(); cheap but called twice per packet by UDP CM clients
    #: that must compute their own RTT samples.
    gettimeofday: float = 1.0
    #: select() on a (small) descriptor set, including the CM control socket.
    select_call: float = 4.0
    #: ioctl() on the CM control socket (cm_request / cm_notify / status).
    ioctl: float = 3.5
    #: Delivering a SIGIO-style signal to a process.
    signal_delivery: float = 12.0
    #: recv()/recvfrom() system call overhead excluding the data copy.
    recv_call: float = 4.0
    #: send()/sendto()/write() system call overhead excluding the data copy.
    send_call: float = 4.0
    #: Fixed in-kernel cost of pushing one packet through the device driver,
    #: IP output and transport send path.
    kernel_tx_packet: float = 16.0
    #: Fixed in-kernel cost of receiving one packet (interrupt, IP input,
    #: transport input).
    kernel_rx_packet: float = 14.0
    #: Internet checksum, per kilobyte of data.
    checksum_per_kb: float = 1.6
    #: CM bookkeeping performed in the kernel per call (window accounting,
    #: scheduler work).  The paper reports this converges to <1% of CPU.
    cm_kernel_op: float = 0.4
    #: Per-callback dispatch cost inside libcm (looking up the registered
    #: callback and invoking it).
    libcm_dispatch: float = 0.8
    #: Connection establishment bookkeeping (socket + protocol control block
    #: allocation); used by the connection-setup microbenchmark.
    connection_setup: float = 120.0

    def price(self, operation: str) -> float:
        """Return the cost of a named operation in microseconds."""
        try:
            return getattr(self, operation)
        except AttributeError as exc:
            raise KeyError(f"unknown host operation: {operation!r}") from exc

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every price multiplied by ``factor``.

        Useful for modelling faster or slower hosts in sensitivity tests.
        """
        values = {f.name: getattr(self, f.name) * factor for f in fields(self)}
        return CostModel(**values)


#: Names of all operations the ledger understands (derived from the model).
OPERATIONS = tuple(f.name for f in fields(CostModel))
