"""CPU accounting ledger for a simulated end host.

Components charge named operations (see
:class:`~repro.hostmodel.costs.CostModel`) plus data-size-dependent costs
(copies, checksums).  Experiments then read total busy time and utilisation
to reproduce the paper's CPU-overhead comparisons (Figure 5) and per-packet
API costs (Figure 6, Table 1).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Optional

from .costs import CostModel

__all__ = ["CpuLedger", "HostCosts"]


class CpuLedger:
    """Accumulates CPU microseconds by category.

    Categories are free-form strings; by convention they are either the
    operation name (``"syscall"``, ``"ioctl"``) or a component label passed
    explicitly (``"tcp"``, ``"cm"``).
    """

    def __init__(self) -> None:
        self.busy_us_by_category: Dict[str, float] = defaultdict(float)
        self.operation_counts: Counter = Counter()
        self.total_us: float = 0.0

    def charge(self, category: str, microseconds: float) -> None:
        """Add ``microseconds`` of busy time under ``category``."""
        if microseconds < 0:
            raise ValueError("cannot charge negative CPU time")
        self.busy_us_by_category[category] += microseconds
        self.total_us += microseconds

    def count(self, operation: str, times: int = 1) -> None:
        """Record that ``operation`` happened ``times`` times (no CPU charge)."""
        self.operation_counts[operation] += times

    def utilization(self, elapsed_seconds: float) -> float:
        """Fraction of ``elapsed_seconds`` the host CPU was busy (capped at 1)."""
        if elapsed_seconds <= 0:
            return 0.0
        return min(1.0, self.total_us / 1e6 / elapsed_seconds)

    def snapshot(self) -> Dict[str, float]:
        """Copy of the per-category busy time, for diffing in tests."""
        return dict(self.busy_us_by_category)

    def reset(self) -> None:
        """Zero all counters."""
        self.busy_us_by_category.clear()
        self.operation_counts.clear()
        self.total_us = 0.0


class HostCosts:
    """Convenience facade bundling a :class:`CostModel` and a :class:`CpuLedger`.

    Each simulated :class:`~repro.netsim.node.Host` owns one of these; the
    IP layer, transports, the CM and libcm charge through it.
    """

    def __init__(self, model: Optional[CostModel] = None, ledger: Optional[CpuLedger] = None):
        self.model = model or CostModel()
        self.ledger = ledger or CpuLedger()

    # ------------------------------------------------------------ primitives
    def charge_operation(self, operation: str, count: int = 1, category: Optional[str] = None) -> float:
        """Charge ``count`` occurrences of a named operation; returns µs charged."""
        microseconds = self.model.price(operation) * count
        self.ledger.charge(category or operation, microseconds)
        self.ledger.count(operation, count)
        return microseconds

    def charge_copy(self, nbytes: int, category: str = "copy") -> float:
        """Charge a kernel<->user data copy of ``nbytes`` bytes."""
        microseconds = self.model.copy_per_kb * (nbytes / 1024.0)
        self.ledger.charge(category, microseconds)
        self.ledger.count("copy_bytes", nbytes)
        return microseconds

    def charge_checksum(self, nbytes: int, category: str = "checksum") -> float:
        """Charge computing an Internet checksum over ``nbytes`` bytes."""
        microseconds = self.model.checksum_per_kb * (nbytes / 1024.0)
        self.ledger.charge(category, microseconds)
        return microseconds

    # ----------------------------------------------------- common composites
    def syscall(self, operation: str = "syscall", category: Optional[str] = None) -> float:
        """Charge a system call of the given flavour (trap plus the op itself)."""
        total = self.charge_operation("syscall", category=category)
        if operation != "syscall":
            total += self.charge_operation(operation, category=category)
        return total

    def kernel_tx(self, nbytes: int) -> float:
        """Charge the in-kernel transmit path for one packet of ``nbytes``."""
        total = self.charge_operation("kernel_tx_packet", category="kernel")
        total += self.charge_checksum(nbytes, category="kernel")
        return total

    def kernel_rx(self, nbytes: int) -> float:
        """Charge the in-kernel receive path for one packet of ``nbytes``."""
        total = self.charge_operation("kernel_rx_packet", category="kernel")
        total += self.charge_checksum(nbytes, category="kernel")
        return total

    # ------------------------------------------------------------ inspection
    @property
    def total_us(self) -> float:
        """Total microseconds charged so far."""
        return self.ledger.total_us

    def utilization(self, elapsed_seconds: float) -> float:
        """CPU utilisation over ``elapsed_seconds`` of simulated time."""
        return self.ledger.utilization(elapsed_seconds)
