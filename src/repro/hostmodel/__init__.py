"""End-host CPU cost model (system calls, crossings, copies).

See :mod:`repro.hostmodel.costs` for the calibration rationale.
"""

from .costs import CostModel, OPERATIONS
from .ledger import CpuLedger, HostCosts

__all__ = ["CostModel", "OPERATIONS", "CpuLedger", "HostCosts"]
