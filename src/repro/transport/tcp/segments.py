"""TCP segment construction helpers.

Segments are ordinary :class:`~repro.netsim.packet.Packet` objects whose
``headers`` record is a :class:`~repro.netsim.packet.TCPHeader` carrying the
TCP fields this reproduction needs: byte sequence/acknowledgement numbers,
SYN/FIN flags, and RFC 1323-style timestamp / timestamp-echo values used for
RTT measurement.

Each builder takes an optional :class:`~repro.netsim.packet.PacketPool`;
when given, the segment is checked out of the pool (recycling both the
packet and its header record — the allocation-free fast path) and will be
returned to it by the IP input path or a link drop.  Because pooled headers
still hold the previous segment's values, **every builder assigns every
header field**, including the ones it semantically lacks.
"""

from __future__ import annotations

from typing import Optional

from ...netsim.packet import PROTO_TCP, Packet, PacketPool, TCPHeader

__all__ = ["data_segment", "ack_segment", "syn_segment", "synack_segment", "fin_segment"]


def _blank_segment(
    src: str, dst: str, sport: int, dport: int,
    payload_bytes: int, ecn_capable: bool, pool: Optional[PacketPool],
) -> Packet:
    if pool is not None:
        return pool.acquire(src, dst, sport, dport, payload_bytes, ecn_capable)
    return Packet(
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        protocol=PROTO_TCP,
        payload_bytes=payload_bytes,
        headers=TCPHeader(),
        ecn_capable=ecn_capable,
    )


def data_segment(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    seq: int,
    length: int,
    timestamp: float,
    retransmission: bool = False,
    ecn_capable: bool = False,
    pool: Optional[PacketPool] = None,
) -> Packet:
    """Build a data-bearing segment starting at byte ``seq``."""
    packet = _blank_segment(src, dst, sport, dport, length, ecn_capable, pool)
    header = packet.headers
    header.seq = seq
    header.len = length
    header.ts = timestamp
    header.retransmission = retransmission
    header.ack = None
    header.ts_echo = None
    header.ecn_echo = False
    header.syn = False
    header.fin = False
    return packet


def ack_segment(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    ack: int,
    ts_echo: Optional[float],
    ecn_echo: bool = False,
    pool: Optional[PacketPool] = None,
) -> Packet:
    """Build a pure acknowledgement for all bytes below ``ack``."""
    packet = _blank_segment(src, dst, sport, dport, 0, False, pool)
    header = packet.headers
    header.seq = None
    header.len = 0
    header.ts = None
    header.retransmission = False
    header.ack = ack
    header.ts_echo = ts_echo
    header.ecn_echo = ecn_echo
    header.syn = False
    header.fin = False
    return packet


def syn_segment(
    src: str, dst: str, sport: int, dport: int, timestamp: float,
    pool: Optional[PacketPool] = None,
) -> Packet:
    """Connection-request segment (consumes no sequence space in this model)."""
    packet = _blank_segment(src, dst, sport, dport, 0, False, pool)
    header = packet.headers
    header.seq = None
    header.len = 0
    header.ts = timestamp
    header.retransmission = False
    header.ack = None
    header.ts_echo = None
    header.ecn_echo = False
    header.syn = True
    header.fin = False
    return packet


def synack_segment(
    src: str, dst: str, sport: int, dport: int, ts_echo: float,
    pool: Optional[PacketPool] = None,
) -> Packet:
    """Listener's reply completing the (simplified two-way) handshake.

    Carries ``ack == 0`` — present-but-zero, the way the old header dict
    distinguished "has an ack field" from its value.
    """
    packet = _blank_segment(src, dst, sport, dport, 0, False, pool)
    header = packet.headers
    header.seq = None
    header.len = 0
    header.ts = None
    header.retransmission = False
    header.ack = 0
    header.ts_echo = ts_echo
    header.ecn_echo = False
    header.syn = True
    header.fin = False
    return packet


def fin_segment(
    src: str, dst: str, sport: int, dport: int, seq: int,
    pool: Optional[PacketPool] = None,
) -> Packet:
    """Half-close marker sent after the last data byte."""
    packet = _blank_segment(src, dst, sport, dport, 0, False, pool)
    header = packet.headers
    header.seq = seq
    header.len = 0
    header.ts = None
    header.retransmission = False
    header.ack = None
    header.ts_echo = None
    header.ecn_echo = False
    header.syn = False
    header.fin = True
    return packet
