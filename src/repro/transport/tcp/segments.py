"""TCP segment construction helpers.

Segments are ordinary :class:`~repro.netsim.packet.Packet` objects whose
``headers`` dict carries the TCP fields this reproduction needs: byte
sequence/acknowledgement numbers, SYN/FIN flags, and RFC 1323-style
timestamp / timestamp-echo values used for RTT measurement.
"""

from __future__ import annotations

from typing import Optional

from ...netsim.packet import PROTO_TCP, Packet

__all__ = ["data_segment", "ack_segment", "syn_segment", "synack_segment", "fin_segment"]


def data_segment(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    seq: int,
    length: int,
    timestamp: float,
    retransmission: bool = False,
    ecn_capable: bool = False,
) -> Packet:
    """Build a data-bearing segment starting at byte ``seq``."""
    return Packet(
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        protocol=PROTO_TCP,
        payload_bytes=length,
        ecn_capable=ecn_capable,
        headers={
            "seq": seq,
            "len": length,
            "ts": timestamp,
            "retransmission": retransmission,
        },
    )


def ack_segment(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    ack: int,
    ts_echo: Optional[float],
    ecn_echo: bool = False,
) -> Packet:
    """Build a pure acknowledgement for all bytes below ``ack``."""
    return Packet(
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        protocol=PROTO_TCP,
        payload_bytes=0,
        headers={
            "ack": ack,
            "ts_echo": ts_echo,
            "ecn_echo": ecn_echo,
        },
    )


def syn_segment(src: str, dst: str, sport: int, dport: int, timestamp: float) -> Packet:
    """Connection-request segment (consumes no sequence space in this model)."""
    return Packet(
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        protocol=PROTO_TCP,
        payload_bytes=0,
        headers={"syn": True, "ts": timestamp},
    )


def synack_segment(src: str, dst: str, sport: int, dport: int, ts_echo: float) -> Packet:
    """Listener's reply completing the (simplified two-way) handshake."""
    return Packet(
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        protocol=PROTO_TCP,
        payload_bytes=0,
        headers={"syn": True, "ack": 0, "ts_echo": ts_echo},
    )


def fin_segment(src: str, dst: str, sport: int, dport: int, seq: int) -> Packet:
    """Half-close marker sent after the last data byte."""
    return Packet(
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        protocol=PROTO_TCP,
        payload_bytes=0,
        headers={"fin": True, "seq": seq},
    )
