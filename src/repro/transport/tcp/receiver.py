"""TCP receiver side: listener, per-connection reassembly and ACK generation.

The CM architecture evaluated in the paper requires **no changes at the
receiver**: a completely standard TCP receiver provides the cumulative,
duplicate and (optionally) delayed acknowledgements that the sending side —
whether native Linux-style TCP or TCP/CM — feeds back into its congestion
control.  This module is therefore shared by both sender variants.

:class:`TCPListener` accepts connections on a port and demultiplexes
segments to per-connection :class:`TCPReceiverConnection` objects keyed by
the remote ``(address, port)`` pair, the way a kernel's PCB lookup does.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ...netsim.engine import Simulator, Timer
from ...netsim.node import Host
from ...netsim.packet import PROTO_TCP, Packet, pool_for
from .segments import ack_segment, synack_segment

__all__ = ["TCPListener", "TCPReceiverConnection"]

#: Standard delayed-ACK holdover used when only one segment is pending.
DELAYED_ACK_TIMEOUT = 0.1


class TCPReceiverConnection:
    """Reassembly and acknowledgement state for one inbound connection."""

    def __init__(
        self,
        host: Host,
        local_port: int,
        peer_addr: str,
        peer_port: int,
        delayed_acks: bool = True,
        on_data: Optional[Callable[[int, float], None]] = None,
    ):
        self.host = host
        self.sim: Simulator = host.sim
        self.local_port = local_port
        self.peer_addr = peer_addr
        self.peer_port = peer_port
        self.delayed_acks = delayed_acks
        self.on_data = on_data

        #: Next in-order byte expected from the peer.
        self.rcv_nxt = 0
        #: Out-of-order segments buffered until the gap fills: seq -> length.
        self._out_of_order: Dict[int, int] = {}
        self._segments_since_ack = 0
        self._last_ts: Optional[float] = None
        self._delack_timer = Timer(self.sim, self._delayed_ack_expired)
        self._pool = pool_for(self.sim)
        #: "Quick ACK" counter: the first few in-order segments of a
        #: connection are acknowledged immediately (as Linux does) so that a
        #: sender starting from a one-segment initial window is not stalled
        #: by the delayed-ACK timer.
        self._quickack_remaining = 4

        self.bytes_received = 0
        self.acks_sent = 0
        self.dup_acks_sent = 0
        self.fin_received = False

    # ------------------------------------------------------------------ input
    def handle_segment(self, packet: Packet) -> None:
        """Process one arriving segment (data or FIN) and generate ACKs."""
        headers = packet.headers
        if headers.fin:
            self.fin_received = True
            self._send_ack(immediate=True, ecn_echo=packet.ecn_marked)
            return
        seq = headers.seq
        length = headers.len
        if seq is None or length <= 0:
            return
        ts = headers.ts

        if seq == self.rcv_nxt:
            # In-order arrival: deliver it and anything contiguous behind it.
            self._deliver(length)
            self._last_ts = ts
            while self.rcv_nxt in self._out_of_order:
                buffered = self._out_of_order.pop(self.rcv_nxt)
                self._deliver(buffered)
            self._segments_since_ack += 1
            must_ack_now = (
                not self.delayed_acks
                or self._segments_since_ack >= 2
                or bool(self._out_of_order)
                or packet.ecn_marked
                or self._quickack_remaining > 0
            )
            if self._quickack_remaining > 0:
                self._quickack_remaining -= 1
            if must_ack_now:
                self._send_ack(immediate=True, ecn_echo=packet.ecn_marked)
            else:
                # Per-segment refresh; the deadline always moves later, so
                # the coalescing Timer makes this free of heap operations.
                self._delack_timer.restart(DELAYED_ACK_TIMEOUT)
        elif seq < self.rcv_nxt:
            # Duplicate of already-delivered data (a spurious retransmission);
            # re-acknowledge so the sender can move on.
            self._send_ack(immediate=True, ecn_echo=packet.ecn_marked)
        else:
            # A hole: buffer the segment and emit an immediate duplicate ACK.
            self._out_of_order[seq] = length
            self.dup_acks_sent += 1
            self._send_ack(immediate=True, ecn_echo=packet.ecn_marked)

    def _deliver(self, length: int) -> None:
        self.rcv_nxt += length
        self.bytes_received += length
        if self.on_data is not None:
            self.on_data(length, self.sim.now)

    # ------------------------------------------------------------------- acks
    def _delayed_ack_expired(self) -> None:
        if self._segments_since_ack > 0:
            self._send_ack(immediate=True)

    def _send_ack(self, immediate: bool, ecn_echo: bool = False) -> None:
        self._delack_timer.cancel()
        self._segments_since_ack = 0
        ack = ack_segment(
            src=self.host.addr,
            dst=self.peer_addr,
            sport=self.local_port,
            dport=self.peer_port,
            ack=self.rcv_nxt,
            ts_echo=self._last_ts,
            ecn_echo=ecn_echo,
            pool=self._pool,
        )
        self.acks_sent += 1
        self.host.ip.send(ack)


class TCPListener:
    """Passive endpoint accepting TCP connections on one port."""

    def __init__(
        self,
        host: Host,
        port: int,
        delayed_acks: bool = True,
        on_data: Optional[Callable[[int, float], None]] = None,
        on_connection: Optional[Callable[[TCPReceiverConnection], None]] = None,
    ):
        self.host = host
        self.port = port
        self.delayed_acks = delayed_acks
        self.on_data = on_data
        self.on_connection = on_connection
        self.connections: Dict[Tuple[str, int], TCPReceiverConnection] = {}
        self._pool = pool_for(host.sim)
        host.ip.register_handler(PROTO_TCP, port, self._handle_packet)

    def close(self) -> None:
        """Stop accepting segments on this port."""
        self.host.ip.unregister_handler(PROTO_TCP, self.port)

    def connection_for(self, peer_addr: str, peer_port: int) -> Optional[TCPReceiverConnection]:
        """Look up the connection state for a remote endpoint."""
        return self.connections.get((peer_addr, peer_port))

    @property
    def total_bytes_received(self) -> int:
        """Bytes received in order across all connections ever accepted."""
        return sum(conn.bytes_received for conn in self.connections.values())

    # -------------------------------------------------------------- internals
    def _handle_packet(self, packet: Packet) -> None:
        key = (packet.src, packet.sport)
        if packet.headers.syn:
            connection = self.connections.get(key)
            if connection is None:
                connection = TCPReceiverConnection(
                    host=self.host,
                    local_port=self.port,
                    peer_addr=packet.src,
                    peer_port=packet.sport,
                    delayed_acks=self.delayed_acks,
                    on_data=self.on_data,
                )
                self.connections[key] = connection
                if self.host.costs is not None:
                    self.host.costs.charge_operation("connection_setup", category="tcp")
                if self.on_connection is not None:
                    self.on_connection(connection)
            # (Re)send the SYN-ACK; duplicate SYNs just elicit another one.
            reply = synack_segment(
                src=self.host.addr,
                dst=packet.src,
                sport=self.port,
                dport=packet.sport,
                ts_echo=packet.headers.ts,
                pool=self._pool,
            )
            self.host.ip.send(reply)
            return
        connection = self.connections.get(key)
        if connection is None:
            # Data for a connection we never saw a SYN for; ignore it (the
            # sender's RTO will recover once the SYN retransmission arrives).
            return
        connection.handle_segment(packet)
