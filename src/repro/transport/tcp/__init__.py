"""TCP: the native Reno-style baseline (TCP/Linux) and TCP/CM."""

from .receiver import TCPListener, TCPReceiverConnection
from .reno import RenoTCPSender
from .sender import TCPSenderBase
from .tcp_cm import CMTCPSender

__all__ = [
    "TCPSenderBase",
    "RenoTCPSender",
    "CMTCPSender",
    "TCPListener",
    "TCPReceiverConnection",
]
