"""TCP/CM: TCP with congestion control offloaded to the Congestion Manager.

This follows §3.2 of the paper closely:

* **Connection creation** — ``cm_open`` associates the connection with a CM
  flow (joining the per-destination macroflow); from then on the pacing of
  outgoing data is controlled by the CM.
* **Transmission** — when data is queued the sender calls ``cm_request``;
  the CM's ``cmapp_send`` callback then transmits either a pending
  retransmission or up to one MSS of new data.  The IP output routine's
  ``cm_notify`` hook charges the transmission to the macroflow
  automatically.
* **Feedback** — new cumulative ACKs become ``cm_update`` reports of
  successfully received bytes (with the RTT sample); the third duplicate
  ACK reports transient congestion; later duplicate ACKs report a segment
  having left the network; an RTO reports persistent congestion
  (``CM_LOST_FEEDBACK``).
* **Shared RTT** — the retransmission timeout uses the macroflow's smoothed
  RTT via ``cm_query``, so a brand-new connection benefits from samples
  gathered by earlier connections to the same receiver.

Being an in-kernel client, TCP/CM uses direct function-call callbacks; the
only extra per-packet cost relative to native TCP is the CM's own kernel
bookkeeping, which is what Figure 5 measures.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...core.constants import (
    CM_ECN_CONGESTION,
    CM_NO_CONGESTION,
    CM_PERSISTENT_CONGESTION,
    CM_TRANSIENT_CONGESTION,
)
from ...core.errors import FlowClosedError, UnknownFlowError
from ...netsim.node import Host
from ...netsim.packet import DEFAULT_MSS, PROTO_TCP
from .sender import DEFAULT_RECEIVE_WINDOW, MAX_BACKOFF, TCPSenderBase

__all__ = ["CMTCPSender"]

#: Upper bound on cm_request calls left unanswered at any time.  TCP tops the
#: pool back up after every grant and every ACK, so this only bounds how deep
#: the CM scheduler queue can get for a bulk sender, not throughput.
MAX_PENDING_REQUESTS = 64


class CMTCPSender(TCPSenderBase):
    """TCP sender whose congestion control lives in the host's CM."""

    variant = "tcp-cm"

    def __init__(
        self,
        host: Host,
        dst: str,
        dport: int,
        sport: Optional[int] = None,
        mss: int = DEFAULT_MSS,
        receive_window: int = DEFAULT_RECEIVE_WINDOW,
        ecn: bool = False,
    ):
        if host.cm is None:
            raise RuntimeError("CMTCPSender requires a Congestion Manager on the host")
        super().__init__(host, dst, dport, sport=sport, mss=mss,
                         receive_window=receive_window, ecn=ecn)
        self.cm = host.cm
        # Associate the connection with a CM flow immediately: the SYN and
        # all data share the same 5-tuple, so the IP output hook can charge
        # every transmission to the right macroflow.
        self.flow_id = self.cm.cm_open(host.addr, dst, self.sport, dport, PROTO_TCP)
        self.cm.cm_register_send(self.flow_id, self._cmapp_send)

        #: Requests issued to the CM that have not yet produced a callback.
        self._requests_outstanding = 0
        #: Segments queued for retransmission: (seq, length) pairs.
        self._retransmit_queue: List[Tuple[int, int]] = []
        #: Bytes already reported to the CM through duplicate-ACK updates and
        #: not yet covered by a cumulative ACK; the next cumulative report is
        #: reduced by this amount so the same bytes are never counted twice.
        self._dupack_reported_bytes = 0
        self.in_recovery = False
        self._recover_point = 0
        self._ecn_reported_point = 0
        self.fast_retransmits = 0
        self.declined_grants = 0

    # ====================================================================== #
    # Hooks from the base sender                                             #
    # ====================================================================== #
    def _on_send_opportunity(self) -> None:
        if not self.connected or self.closed:
            return
        self._request_transmissions()

    def _on_new_ack(self, bytes_acked: int, rtt_sample: float, ecn_echo: bool) -> None:
        lossmode = CM_NO_CONGESTION
        if ecn_echo and self.snd_una >= self._ecn_reported_point:
            lossmode = CM_ECN_CONGESTION
            self._ecn_reported_point = self.snd_nxt
        # Bytes already reported through duplicate-ACK updates must not be
        # reported again when the cumulative ACK finally covers them.  During
        # recovery, however, each cumulative ACK confirms that the freshly
        # retransmitted segment left the network, so always report at least
        # one MSS — otherwise the CM would never open the window enough to
        # grant the next retransmission and recovery would stall into an RTO.
        floor = min(self.mss, bytes_acked) if self.in_recovery else 0
        consumed = min(self._dupack_reported_bytes, max(0, bytes_acked - floor))
        report = bytes_acked - consumed
        self._dupack_reported_bytes -= consumed
        if report > 0 or lossmode != CM_NO_CONGESTION:
            self.cm.cm_update(self.flow_id, report, report, lossmode, rtt_sample)
        elif rtt_sample > 0:
            self.cm.cm_update(self.flow_id, 0, 0, CM_NO_CONGESTION, rtt_sample)
        if self.in_recovery:
            if self.snd_una >= self._recover_point:
                self.in_recovery = False
            else:
                # Partial ACK (NewReno): the next hole also needs
                # retransmitting, and like the initial fast retransmit it
                # replaces a segment already reported resolved, so it goes
                # out immediately.
                self._fast_retransmit_head()

    def _on_dupack(self, count: int, ecn_echo: bool) -> None:
        if count == 3 and not self.in_recovery:
            # A single segment was lost somewhere in the window: transient
            # congestion.  Queue the retransmission and ask the CM for
            # permission to send it.
            self.fast_retransmits += 1
            self.in_recovery = True
            self._recover_point = self.snd_nxt
            self.cm.cm_update(self.flow_id, self.mss, 0, CM_TRANSIENT_CONGESTION, 0.0)
            self._dupack_reported_bytes += self.mss
            # Fast retransmit.  The lost segment's bytes were just reported
            # resolved to the CM, so resending them does not increase the
            # data outstanding in the network; following Reno's
            # conservation-of-packets reasoning the retransmission is sent
            # immediately instead of waiting for a grant that the freshly
            # halved window may not produce until half a window of duplicate
            # ACKs has drained the pipe (which would frequently push
            # recovery into a retransmission timeout the paper's TCP/CM does
            # not exhibit).  New data during recovery still waits for grants.
            self._fast_retransmit_head()
            self._request_transmissions()
        elif count > 3:
            # Each additional duplicate ACK means another segment reached the
            # receiver and left the network.
            self.cm.cm_update(self.flow_id, self.mss, self.mss, CM_NO_CONGESTION, 0.0)
            self._dupack_reported_bytes += self.mss
            self._request_transmissions()
        if ecn_echo and self.snd_una >= self._ecn_reported_point:
            self.cm.cm_update(self.flow_id, 0, 0, CM_ECN_CONGESTION, 0.0)
            self._ecn_reported_point = self.snd_nxt

    def _on_timeout(self) -> None:
        # A retransmission timeout signals persistent congestion; everything
        # in flight is presumed lost (CM_LOST_FEEDBACK in the paper's API).
        flight = self.flight_size
        report = max(0, flight - self._dupack_reported_bytes)
        self.cm.cm_update(self.flow_id, report, 0, CM_PERSISTENT_CONGESTION, 0.0)
        # Everything in flight is being rewound; the sequence space will be
        # re-sent and re-reported, so forget the duplicate-ACK compensation.
        self._dupack_reported_bytes = 0
        self.in_recovery = False
        self._retransmit_queue.clear()

    def _on_close(self) -> None:
        try:
            self.cm.cm_close(self.flow_id)
        except Exception:
            # The flow may already have been closed by an explicit caller.
            pass

    def _current_rto(self) -> float:
        """Use the macroflow's shared smoothed RTT for loss recovery (§3.2)."""
        try:
            status = self.cm.cm_query(self.flow_id)
        except Exception:
            return super()._current_rto()
        shared_rto = max(status.rto, 0.2)
        local_rto = self.rtt.rto() if self.rtt.has_samples else shared_rto
        return min(MAX_BACKOFF * 60.0, max(shared_rto, local_rto) * self._backoff)

    # ====================================================================== #
    # CM interaction                                                         #
    # ====================================================================== #
    def _segments_wanted(self) -> int:
        """How many MSS-sized transmission opportunities we could use now."""
        wanted = len(self._retransmit_queue)
        sendable_new = min(self.app_limit - self.snd_nxt, self._usable_window_bytes())
        if sendable_new > 0:
            wanted += -(-sendable_new // self.mss)  # ceil division
        return wanted

    def _request_transmissions(self) -> None:
        wanted = min(self._segments_wanted(), MAX_PENDING_REQUESTS)
        needed = wanted - self._requests_outstanding
        for _ in range(needed):
            self._requests_outstanding += 1
            self.cm.cm_request(self.flow_id)

    def _queue_head_retransmission(self) -> None:
        length = min(self.mss, self.app_limit - self.snd_una)
        if length <= 0:
            return
        entry = (self.snd_una, length)
        if entry not in self._retransmit_queue:
            self._retransmit_queue.append(entry)

    def _fast_retransmit_head(self) -> None:
        """Immediately resend the segment at ``snd_una`` (loss recovery)."""
        length = min(self.mss, self.app_limit - self.snd_una)
        if length > 0:
            self._transmit_segment(self.snd_una, length, retransmission=True)

    def _decline_grant(self, flow_id: int) -> None:
        """Give an unusable grant back so sibling flows are not starved.

        A grant can arrive *after* ``close()``: the CM defers ``cmapp_send``
        callbacks (call-soon queue), so one may already be in flight when
        ``cm_close`` retires the flow.  The CM reclaims the closed flow's
        reserved window itself in that case, so the decline is simply
        dropped instead of crashing on the unknown flow id.
        """
        self.declined_grants += 1
        try:
            self.cm.cm_notify(flow_id, 0)
        except (UnknownFlowError, FlowClosedError):
            # Only the after-close race is tolerable; other CM errors on a
            # live flow must keep propagating.
            pass

    def _cmapp_send(self, flow_id: int) -> None:
        """CM grant: transmit a retransmission first, otherwise new data."""
        self._requests_outstanding = max(0, self._requests_outstanding - 1)
        if self.closed or not self.connected:
            self._decline_grant(flow_id)
            return
        if self._retransmit_queue:
            seq, length = self._retransmit_queue.pop(0)
            if seq < self.snd_una:
                # The data was acknowledged while the grant was in flight.
                length = 0
            if length > 0:
                self._transmit_segment(seq, length, retransmission=True)
                self._request_transmissions()
                return
        length = self._next_new_segment_length()
        if length > 0:
            self._transmit_segment(self.snd_nxt, length, retransmission=False)
            self.snd_nxt += length
            self._request_transmissions()
            return
        # Nothing to send after all: give the grant back so other flows on
        # the macroflow are not starved (paper §2.1.3).
        self._decline_grant(flow_id)
