"""TCP/Linux baseline: a Reno/NewReno-style sender with its own congestion control.

This is the comparison point the paper calls "TCP/Linux": a conventional TCP
sender whose congestion window lives inside the connection.  Two
era-accurate details matter for reproducing the evaluation's small gaps
between TCP/Linux and TCP/CM:

* the initial window is **2 segments** (the CM uses 1 MTU), and
* window growth is **packet-counting** — each ACK is assumed to cover a full
  MSS — whereas the CM does byte counting.
"""

from __future__ import annotations

from typing import Optional

from ...netsim.node import Host
from ...netsim.packet import DEFAULT_MSS
from .sender import DEFAULT_RECEIVE_WINDOW, TCPSenderBase

__all__ = ["RenoTCPSender"]


class RenoTCPSender(TCPSenderBase):
    """Native TCP sender with slow start, AIMD, fast retransmit and recovery."""

    variant = "tcp-linux"

    def __init__(
        self,
        host: Host,
        dst: str,
        dport: int,
        sport: Optional[int] = None,
        mss: int = DEFAULT_MSS,
        receive_window: int = DEFAULT_RECEIVE_WINDOW,
        initial_window_segments: int = 2,
        ecn: bool = False,
    ):
        super().__init__(host, dst, dport, sport=sport, mss=mss,
                         receive_window=receive_window, ecn=ecn)
        if initial_window_segments < 1:
            raise ValueError("initial window must be at least one segment")
        self.cwnd = float(initial_window_segments * mss)
        self.ssthresh = float(receive_window)
        self.in_recovery = False
        self._recover_point = 0
        self._ecn_reaction_point = 0
        self.fast_retransmits = 0

    # ------------------------------------------------------------ congestion
    @property
    def effective_window(self) -> float:
        """min(cwnd, receiver window) — the sending limit right now."""
        return min(self.cwnd, float(self.receive_window))

    def _on_send_opportunity(self) -> None:
        if not self.connected:
            return
        while True:
            length = self._next_new_segment_length()
            if length <= 0:
                return
            if self.flight_size + length > self.effective_window:
                return
            self._transmit_segment(self.snd_nxt, length, retransmission=False)
            self.snd_nxt += length

    def _on_new_ack(self, bytes_acked: int, rtt_sample: float, ecn_echo: bool) -> None:
        if self.in_recovery:
            if self.snd_una >= self._recover_point:
                # Full recovery: deflate the window back to ssthresh.
                self.cwnd = self.ssthresh
                self.in_recovery = False
            else:
                # Partial ACK (NewReno): retransmit the next hole and stay in
                # recovery without further window reduction.
                self._retransmit_head()
                self.cwnd = max(self.ssthresh, self.cwnd - bytes_acked + self.mss)
            return
        if ecn_echo:
            self._ecn_congestion_reaction()
        if self.cwnd < self.ssthresh:
            # Slow start, packet-counting: +1 MSS per ACK regardless of the
            # number of bytes the ACK actually covered (the Linux behaviour
            # the paper contrasts with the CM's byte counting).
            self.cwnd += self.mss
        else:
            self.cwnd += self.mss * self.mss / self.cwnd
        self.cwnd = min(self.cwnd, float(self.receive_window))

    def _on_dupack(self, count: int, ecn_echo: bool) -> None:
        if self.in_recovery:
            # Window inflation: each further dupack means a segment left the pipe.
            self.cwnd += self.mss
            self._on_send_opportunity()
            return
        if count == 3:
            self.ssthresh = max(self.flight_size / 2.0, 2.0 * self.mss)
            self.fast_retransmits += 1
            self.in_recovery = True
            self._recover_point = self.snd_nxt
            self._retransmit_head()
            self.cwnd = self.ssthresh + 3.0 * self.mss
        if ecn_echo:
            self._ecn_congestion_reaction()

    def _on_timeout(self) -> None:
        self.ssthresh = max(self.flight_size / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)
        self.in_recovery = False

    # -------------------------------------------------------------- internals
    def _retransmit_head(self) -> None:
        length = min(self.mss, self.app_limit - self.snd_una)
        if length > 0:
            self._transmit_segment(self.snd_una, length, retransmission=True)

    def _ecn_congestion_reaction(self) -> None:
        # React at most once per window of data (RFC 3168 behaviour).
        if self.snd_una < self._ecn_reaction_point:
            return
        self.ssthresh = max(self.flight_size / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        self._ecn_reaction_point = self.snd_nxt
