"""Common TCP sender machinery shared by TCP/Linux and TCP/CM.

The two sender variants in this reproduction differ *only* in congestion
control — exactly the split the paper's TCP/CM makes ("TCP/CM offloads all
congestion control to the CM, while retaining all other TCP functionality").
Everything else lives here:

* connection establishment (SYN / SYN-ACK with retry),
* the send buffer model (the application queues a byte count to deliver),
* cumulative-ACK processing, duplicate-ACK counting,
* RTT sampling from timestamp echoes (Karn-safe because the echo identifies
  the segment that produced the ACK),
* the retransmission timeout with exponential backoff,
* completion/progress callbacks and statistics.

Subclasses implement four hooks: :meth:`_on_send_opportunity`,
:meth:`_on_new_ack`, :meth:`_on_dupack` and :meth:`_on_timeout`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...core.rtt import RttEstimator
from ...netsim.engine import Simulator, Timer
from ...netsim.node import Host
from ...netsim.packet import DEFAULT_MSS, PROTO_TCP, Packet, TCPHeader, pool_for
from .segments import data_segment, syn_segment

__all__ = ["TCPSenderBase"]

#: How long to wait before retransmitting an unanswered SYN.
SYN_RETRY_TIMEOUT = 1.0
#: Largest RTO backoff multiplier.
MAX_BACKOFF = 64.0
#: Default peer receive window; large enough not to be the bottleneck in the
#: paper's 10-100 Mbps scenarios unless an experiment deliberately lowers it.
DEFAULT_RECEIVE_WINDOW = 1 << 20


class TCPSenderBase:
    """Sender-side TCP endpoint transmitting a byte stream to one receiver.

    Parameters
    ----------
    host:
        Local host (provides IP, clock, CPU ledger and — for TCP/CM — the CM).
    dst, dport:
        Remote address and port (a :class:`~repro.transport.tcp.receiver.TCPListener`
        must be listening there).
    sport:
        Local port; allocated automatically when omitted.
    mss:
        Maximum segment size in payload bytes.
    receive_window:
        The peer's advertised window (modelled as a constant).
    ecn:
        Mark data segments ECN-capable so routers can signal congestion by
        marking instead of dropping.
    """

    variant = "base"

    def __init__(
        self,
        host: Host,
        dst: str,
        dport: int,
        sport: Optional[int] = None,
        mss: int = DEFAULT_MSS,
        receive_window: int = DEFAULT_RECEIVE_WINDOW,
        ecn: bool = False,
    ):
        self.host = host
        self.sim: Simulator = host.sim
        self.dst = dst
        self.dport = dport
        self.sport = sport if sport is not None else host.allocate_port()
        self.mss = mss
        self.receive_window = receive_window
        self.ecn = ecn

        # Sequence state (byte granularity, data starts at 0).
        self.snd_una = 0
        self.snd_nxt = 0
        #: Total bytes the application has asked to be delivered.
        self.app_limit = 0

        self.connected = False
        self.connecting = False
        self.closed = False
        self.dupacks = 0

        self.rtt = RttEstimator()
        self._backoff = 1.0
        self._rto_timer = Timer(self.sim, self._rto_expired)
        self._syn_timer = Timer(self.sim, self._retry_syn)
        #: Per-simulator segment recycler; outgoing segments are acquired
        #: here and released by the IP input path at the far end.
        self._pool = pool_for(self.sim)

        # Statistics.
        self.data_packets_sent = 0
        self.bytes_transmitted = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.acks_received = 0
        self.connect_time: Optional[float] = None
        self.established_time: Optional[float] = None
        self.complete_time: Optional[float] = None

        #: Invoked once, with the completion time, when every queued byte has
        #: been acknowledged.
        self.on_complete: Optional[Callable[[float], None]] = None
        #: Invoked after each new cumulative ACK with the total bytes acked.
        self.on_progress: Optional[Callable[[int], None]] = None
        #: Invoked for every transmitted data segment (seq, length, time).
        self.on_transmit: Optional[Callable[[int, int, float], None]] = None
        # Telemetry probe slot (see repro.telemetry); None = compiled no-op.
        self._probe_transmit = None

        host.ip.register_handler(PROTO_TCP, self.sport, self._handle_packet)

    def attach_telemetry(self, hub) -> None:
        """Bind the ``tcp.transmit`` probe to a telemetry hub."""
        self._probe_transmit = hub.probe("tcp.transmit")

    # ====================================================================== #
    # Application interface                                                  #
    # ====================================================================== #
    def send(self, nbytes: int) -> None:
        """Queue ``nbytes`` more application bytes for delivery."""
        if nbytes <= 0:
            return
        if self.closed:
            raise RuntimeError("cannot send on a closed TCP sender")
        self.app_limit += nbytes
        if not self.connected and not self.connecting:
            self.connect()
        elif self.connected:
            self._on_send_opportunity()

    def connect(self) -> None:
        """Initiate the handshake (implicitly called by the first ``send``)."""
        if self.connected or self.connecting or self.closed:
            return
        self.connecting = True
        self.connect_time = self.sim.now
        if self.host.costs is not None:
            self.host.costs.charge_operation("connection_setup", category="tcp")
        self._send_syn()

    def close(self) -> None:
        """Tear the endpoint down and release its port (and CM flow, if any)."""
        if self.closed:
            return
        self.closed = True
        self._rto_timer.cancel()
        self._syn_timer.cancel()
        self.host.ip.unregister_handler(PROTO_TCP, self.sport)
        self._on_close()

    # ------------------------------------------------------------ inspection
    @property
    def bytes_acked(self) -> int:
        """Bytes the receiver has cumulatively acknowledged."""
        return self.snd_una

    @property
    def flight_size(self) -> int:
        """Bytes currently outstanding in the network."""
        return self.snd_nxt - self.snd_una

    @property
    def done(self) -> bool:
        """True once every queued byte has been acknowledged."""
        return self.app_limit > 0 and self.snd_una >= self.app_limit

    def throughput(self) -> float:
        """Goodput in bytes/second from connect to completion (or to now)."""
        if self.connect_time is None:
            return 0.0
        end = self.complete_time if self.complete_time is not None else self.sim.now
        elapsed = end - self.connect_time
        if elapsed <= 0:
            return 0.0
        return self.snd_una / elapsed

    # ====================================================================== #
    # Subclass hooks                                                         #
    # ====================================================================== #
    def _on_established(self) -> None:
        """Called once when the handshake completes."""

    def _on_send_opportunity(self) -> None:
        """Window state may allow transmission; try to make progress."""
        raise NotImplementedError

    def _on_new_ack(self, bytes_acked: int, rtt_sample: float, ecn_echo: bool) -> None:
        """A cumulative ACK advanced ``snd_una`` by ``bytes_acked``."""
        raise NotImplementedError

    def _on_dupack(self, count: int, ecn_echo: bool) -> None:
        """A duplicate ACK arrived; ``count`` is the consecutive total."""
        raise NotImplementedError

    def _on_timeout(self) -> None:
        """The retransmission timer expired (persistent congestion)."""
        raise NotImplementedError

    def _on_close(self) -> None:
        """Variant-specific teardown (e.g. closing the CM flow)."""

    def _current_rto(self) -> float:
        """Retransmission timeout including backoff; variants may override."""
        return min(MAX_BACKOFF * 60.0, self.rtt.rto() * self._backoff)

    # ====================================================================== #
    # Segment transmission                                                   #
    # ====================================================================== #
    def _transmit_segment(self, seq: int, length: int, retransmission: bool) -> None:
        """Emit one data segment and make sure the RTO is running."""
        packet = data_segment(
            src=self.host.addr,
            dst=self.dst,
            sport=self.sport,
            dport=self.dport,
            seq=seq,
            length=length,
            timestamp=self.sim.now,
            retransmission=retransmission,
            ecn_capable=self.ecn,
            pool=self._pool,
        )
        self.host.ip.send(packet)
        self.data_packets_sent += 1
        self.bytes_transmitted += length
        if retransmission:
            self.retransmissions += 1
        probe = self._probe_transmit
        if probe is not None:
            probe(self.sim.now, {"dst": self.dst, "seq": seq, "size": length,
                                 "retransmission": retransmission})
        if self.on_transmit is not None:
            self.on_transmit(seq, length, self.sim.now)
        if not self._rto_timer.pending:
            self._rto_timer.start(self._current_rto())

    def _usable_window_bytes(self) -> int:
        """New bytes the peer's receive window still permits."""
        return max(0, self.snd_una + self.receive_window - self.snd_nxt)

    def _next_new_segment_length(self) -> int:
        """Length of the next brand-new segment, honouring buffer and rwnd.

        Silly-window-syndrome avoidance: when the receive window is not
        aligned to the segment size, do not emit a runt segment while data
        is still in flight — wait for the window to open instead.  (A runt
        in the middle of a stream leaves an odd trailing segment whose ACK
        is delayed by the receiver's delayed-ACK timer.)
        """
        remaining = self.app_limit - self.snd_nxt
        if remaining <= 0:
            return 0
        desired = min(self.mss, remaining)
        usable = self._usable_window_bytes()
        if usable >= desired:
            return desired
        if self.flight_size == 0:
            return min(desired, usable)
        return 0

    # ====================================================================== #
    # Handshake                                                              #
    # ====================================================================== #
    def _send_syn(self) -> None:
        packet = syn_segment(self.host.addr, self.dst, self.sport, self.dport,
                             self.sim.now, pool=self._pool)
        self.host.ip.send(packet)
        self._syn_timer.restart(SYN_RETRY_TIMEOUT)

    def _retry_syn(self) -> None:
        if not self.connected and not self.closed:
            self._send_syn()

    # ====================================================================== #
    # Input processing                                                       #
    # ====================================================================== #
    def _handle_packet(self, packet: Packet) -> None:
        if self.closed:
            return
        headers = packet.headers
        if headers.syn:
            self._handle_synack(headers)
            return
        if headers.ack is not None:
            self._handle_ack(headers)

    def _handle_synack(self, headers: TCPHeader) -> None:
        if self.connected:
            return
        self.connected = True
        self.connecting = False
        self.established_time = self.sim.now
        self._syn_timer.cancel()
        ts_echo = headers.ts_echo
        if ts_echo is not None:
            self.rtt.sample(self.sim.now - ts_echo)
        self._on_established()
        self._on_send_opportunity()

    def _handle_ack(self, headers: TCPHeader) -> None:
        ack = headers.ack
        ts_echo = headers.ts_echo
        ecn_echo = headers.ecn_echo
        self.acks_received += 1

        if ack > self.snd_una:
            bytes_acked = ack - self.snd_una
            self.snd_una = ack
            if self.snd_nxt < self.snd_una:
                # After a go-back-N timeout the receiver may acknowledge data
                # it had buffered out of order, moving the cumulative ACK past
                # our (rewound) send point; never send below snd_una again.
                self.snd_nxt = self.snd_una
            self.dupacks = 0
            self._backoff = 1.0
            rtt_sample = 0.0
            if ts_echo is not None:
                rtt_sample = max(0.0, self.sim.now - ts_echo)
                self.rtt.sample(rtt_sample)
            if self.flight_size > 0:
                # Refreshed on every ACK that advances the window.  The RTO
                # deadline only ever moves later here, so the Timer coalesces
                # this into a deadline update with no heap traffic.
                self._rto_timer.restart(self._current_rto())
            else:
                self._rto_timer.cancel()
            self._on_new_ack(bytes_acked, rtt_sample, ecn_echo)
            if self.on_progress is not None:
                self.on_progress(self.snd_una)
            self._check_complete()
            if not self.closed:
                self._on_send_opportunity()
        elif ack == self.snd_una and self.flight_size > 0:
            self.dupacks += 1
            self._on_dupack(self.dupacks, ecn_echo)

    def _check_complete(self) -> None:
        if self.complete_time is None and self.done:
            self.complete_time = self.sim.now
            self._rto_timer.cancel()
            if self.on_complete is not None:
                self.on_complete(self.complete_time)

    # ====================================================================== #
    # Retransmission timeout                                                 #
    # ====================================================================== #
    def _rto_expired(self) -> None:
        if self.closed or self.flight_size <= 0:
            return
        self.timeouts += 1
        self._backoff = min(MAX_BACKOFF, self._backoff * 2.0)
        self._on_timeout()
        # Go-back-N: everything past the last cumulative ACK is resent.
        self.snd_nxt = self.snd_una
        self.dupacks = 0
        self._rto_timer.start(self._current_rto())
        self._on_send_opportunity()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.host.addr}:{self.sport}->{self.dst}:{self.dport} "
            f"una={self.snd_una} nxt={self.snd_nxt} limit={self.app_limit}>"
        )
