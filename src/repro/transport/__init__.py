"""Transport protocols implemented as CM clients (TCP) and substrates (UDP)."""

from .tcp import CMTCPSender, RenoTCPSender, TCPListener, TCPReceiverConnection
from .udp import AckReflector, AppFeedbackTracker, CMUDPSocket, UDPSocket

__all__ = [
    "RenoTCPSender",
    "CMTCPSender",
    "TCPListener",
    "TCPReceiverConnection",
    "UDPSocket",
    "CMUDPSocket",
    "AckReflector",
    "AppFeedbackTracker",
]
