"""Plain UDP sockets.

These model Berkeley UDP sockets on the simulated host, including the
user/kernel costs of ``sendto``/``recvfrom`` that the paper's API-overhead
study depends on: every datagram an application sends or receives pays a
system call plus a copy across the user/kernel boundary.

A socket may be *connected* (a fixed remote address/port) or unconnected.
The distinction matters for the CM: packets from a connected socket can be
matched to their CM flow by the kernel's IP output hook, whereas an
unconnected socket's application must call ``cm_notify`` itself — that is
exactly the difference between the paper's "ALF" and "ALF/noconnect" API
variants in Figure 6 and Table 1.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...netsim.node import Host
from ...netsim.packet import PROTO_UDP, Packet, UDPHeader

__all__ = ["UDPSocket"]


class UDPSocket:
    """A datagram socket bound to a local port on a host."""

    def __init__(
        self,
        host: Host,
        local_port: Optional[int] = None,
        charge_costs: bool = True,
    ):
        self.host = host
        self.sim = host.sim
        self.local_port = local_port if local_port is not None else host.allocate_port()
        self.charge_costs = charge_costs
        self.remote_addr: Optional[str] = None
        self.remote_port: Optional[int] = None
        self.on_receive: Optional[Callable[[Packet], None]] = None

        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0
        self.bytes_received = 0
        self.closed = False

        host.ip.register_handler(PROTO_UDP, self.local_port, self._deliver)

    # ------------------------------------------------------------------ setup
    def connect(self, remote_addr: str, remote_port: int) -> None:
        """Fix the remote endpoint (enables kernel flow matching for the CM)."""
        self.remote_addr = remote_addr
        self.remote_port = remote_port

    @property
    def is_connected(self) -> bool:
        """True when a remote endpoint has been set with :meth:`connect`."""
        return self.remote_addr is not None

    def close(self) -> None:
        """Release the port; further sends raise."""
        if self.closed:
            return
        self.closed = True
        self.host.ip.unregister_handler(PROTO_UDP, self.local_port)

    # ------------------------------------------------------------------- send
    def send(self, payload_bytes: int, headers: Optional[dict] = None) -> Packet:
        """Send a datagram to the connected remote endpoint."""
        if not self.is_connected:
            raise RuntimeError("send() on an unconnected UDP socket; use sendto()")
        return self.sendto(payload_bytes, self.remote_addr, self.remote_port, headers)

    def sendto(self, payload_bytes: int, addr: str, port: int, headers: Optional[dict] = None) -> Packet:
        """Send a datagram to an explicit destination."""
        if self.closed:
            raise RuntimeError("socket is closed")
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        self._charge_send(payload_bytes)
        packet = Packet(
            src=self.host.addr,
            dst=addr,
            sport=self.local_port,
            dport=port,
            protocol=PROTO_UDP,
            payload_bytes=payload_bytes,
            # The typed UDP header record copies the caller's dict: datagrams
            # are returned to (and may be retained by) the application, so
            # they are never pooled and each needs its own record.
            headers=UDPHeader(headers) if headers else UDPHeader(),
            # Only connected sockets can be matched to their CM flow by the
            # kernel; unconnected senders must cm_notify themselves.
            cm_matchable=self.is_connected,
        )
        self.host.ip.send(packet)
        self.packets_sent += 1
        self.bytes_sent += payload_bytes
        return packet

    # ---------------------------------------------------------------- receive
    def _deliver(self, packet: Packet) -> None:
        if self.closed:
            return
        self.packets_received += 1
        self.bytes_received += packet.payload_bytes
        self._charge_recv(packet.payload_bytes)
        if self.on_receive is not None:
            self.on_receive(packet)

    # -------------------------------------------------------------- cost hooks
    def _charge_send(self, nbytes: int) -> None:
        if self.charge_costs and self.host.costs is not None:
            self.host.costs.syscall("send_call", category="app")
            self.host.costs.charge_copy(nbytes, category="app")

    def _charge_recv(self, nbytes: int) -> None:
        if self.charge_costs and self.host.costs is not None:
            self.host.costs.syscall("recv_call", category="app")
            self.host.costs.charge_copy(nbytes, category="app")
