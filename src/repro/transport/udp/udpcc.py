"""Congestion-controlled UDP sockets (the CM's buffered-send API).

§3.3 of the paper: "They provide the same functionality as standard
Berkeley UDP sockets, but instead of immediately sending the data from the
kernel packet queue to lower layers for transmission, the buffered socket
implementation schedules its packet output via CM callbacks."

The implementation here mirrors that structure:

* ``send``/``sendto`` behave like a normal UDP socket from the
  application's point of view (same system-call and copy costs), but the
  datagram lands in an in-kernel packet queue;
* the kernel calls ``cm_request`` on the socket's flow for each queued
  datagram;
* when the CM grants, ``udp_ccappsend`` transmits one datagram from the
  queue (no extra data copies — the queue holds the already-copied kernel
  buffer).

The application's only remaining responsibility is feedback: it must report
its receiver's acknowledgements with ``cm_update`` (usually through
:class:`~repro.transport.udp.feedback.AppFeedbackTracker`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ...netsim.node import Host
from ...netsim.packet import PROTO_UDP, Packet, UDPHeader
from .socket import UDPSocket

__all__ = ["CMUDPSocket"]


class CMUDPSocket(UDPSocket):
    """A UDP socket whose transmissions are paced by the Congestion Manager.

    The socket must be :meth:`connect`-ed before sending so the kernel can
    bind it to a CM flow (this is the ``setsockopt(..., CM_BUF)`` step in
    the paper's usage sketch).
    """

    def __init__(
        self,
        host: Host,
        local_port: Optional[int] = None,
        charge_costs: bool = True,
        max_queue_packets: int = 1000,
    ):
        if host.cm is None:
            raise RuntimeError("CMUDPSocket requires a Congestion Manager on the host")
        super().__init__(host, local_port=local_port, charge_costs=charge_costs)
        self.cm = host.cm
        self.max_queue_packets = max_queue_packets
        self.flow_id: Optional[int] = None
        #: The in-kernel packet queue: (payload_bytes, dst, dport, headers).
        self._queue: Deque[Tuple[int, str, int, dict]] = deque()
        self.queue_drops = 0
        self.cm_transmissions = 0

    # ------------------------------------------------------------------ setup
    def connect(self, remote_addr: str, remote_port: int) -> None:
        super().connect(remote_addr, remote_port)
        if self.flow_id is None:
            self.flow_id = self.cm.cm_open(
                self.host.addr, remote_addr, self.local_port, remote_port, PROTO_UDP
            )
            self.cm.cm_register_send(self.flow_id, self._udp_ccappsend)

    def close(self) -> None:
        if self.flow_id is not None:
            try:
                self.cm.cm_close(self.flow_id)
            except Exception:
                pass
            self.flow_id = None
        super().close()

    @property
    def queued_packets(self) -> int:
        """Datagrams waiting in the kernel queue for a CM grant."""
        return len(self._queue)

    # ------------------------------------------------------------------- send
    def sendto(
        self, payload_bytes: int, addr: str, port: int, headers: Optional[dict] = None
    ) -> Optional[Packet]:
        """Queue a datagram for CM-paced transmission.

        Returns ``None`` because the packet is not built until the CM grant
        arrives; if the kernel queue is full the datagram is dropped (the
        same back-pressure a full socket buffer gives a real application).
        """
        if self.closed:
            raise RuntimeError("socket is closed")
        if self.flow_id is None:
            raise RuntimeError("CMUDPSocket must be connected before sending")
        if addr != self.remote_addr or port != self.remote_port:
            raise ValueError("CM UDP sockets can only send to their connected destination")
        self._charge_send(payload_bytes)
        if len(self._queue) >= self.max_queue_packets:
            self.queue_drops += 1
            return None
        self._queue.append(
            (payload_bytes, addr, port, UDPHeader(headers) if headers else UDPHeader())
        )
        self.cm.cm_request(self.flow_id)
        return None

    # --------------------------------------------------------------- CM grant
    def _udp_ccappsend(self, flow_id: int) -> None:
        """Transmit one MTU's worth (one datagram) from the kernel queue."""
        if self.closed or not self._queue:
            self.cm.cm_notify(flow_id, 0)
            return
        payload_bytes, addr, port, headers = self._queue.popleft()
        packet = Packet(
            src=self.host.addr,
            dst=addr,
            sport=self.local_port,
            dport=port,
            protocol=PROTO_UDP,
            payload_bytes=payload_bytes,
            headers=headers,
        )
        self.host.ip.send(packet)
        self.packets_sent += 1
        self.bytes_sent += payload_bytes
        self.cm_transmissions += 1
