"""UDP: plain sockets, CM-paced (buffered) sockets, and app-level feedback."""

from .feedback import AckReflector, AppFeedbackTracker, FeedbackReport
from .socket import UDPSocket
from .udpcc import CMUDPSocket

__all__ = ["UDPSocket", "CMUDPSocket", "AckReflector", "AppFeedbackTracker", "FeedbackReport"]
