"""Application-level acknowledgements for UDP-based CM clients.

Because the CM evaluated in the paper makes **no changes to the receiver's
protocol stack**, every UDP application that wants congestion control must
arrange its own feedback: the receiver echoes acknowledgements in
application payloads, and the sender converts them into ``cm_update``
reports (bytes resolved, bytes received, loss mode, RTT sample).

Two pieces are provided:

* :class:`AckReflector` — the receiver-side application: acknowledges each
  datagram (or batches acknowledgements, for the delayed-feedback study of
  Figure 10) by echoing the sequence number, the sender's timestamp and the
  cumulative receive count.
* :class:`AppFeedbackTracker` — the sender-side bookkeeping that turns ACK
  arrivals into the ``(nsent, nrecd, lossmode, rtt)`` tuples ``cm_update``
  expects, detecting losses from sequence-number gaps.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ...core.constants import CM_NO_CONGESTION, CM_PERSISTENT_CONGESTION, CM_TRANSIENT_CONGESTION
from ...netsim.engine import Timer
from ...netsim.node import Host
from ...netsim.packet import Packet
from .socket import UDPSocket

__all__ = ["AckReflector", "AppFeedbackTracker", "FeedbackReport"]

#: Size of an application-level ACK payload (sequence number, timestamp echo,
#: cumulative counters — comparable to an RTP receiver report).
ACK_PAYLOAD_BYTES = 24


class AckReflector:
    """Receiver application that acknowledges incoming datagrams.

    Parameters
    ----------
    host, port:
        Where to listen.
    ack_every_packets:
        Send one acknowledgement per ``N`` received datagrams.  ``1`` gives
        per-packet feedback (the common case); larger values model
        receivers that batch feedback.
    ack_delay:
        Maximum time feedback may be withheld; with batching enabled an
        acknowledgement is sent when either the packet count or this delay
        is reached — Figure 10 uses ``min(500 packets, 2 seconds)``.
    on_data:
        Optional observer called with ``(packet, now)`` for every arrival
        (used by streaming clients to measure received layers).
    """

    def __init__(
        self,
        host: Host,
        port: int,
        ack_every_packets: int = 1,
        ack_delay: Optional[float] = None,
        on_data: Optional[Callable[[Packet, float], None]] = None,
        charge_costs: bool = False,
    ):
        if ack_every_packets < 1:
            raise ValueError("ack_every_packets must be >= 1")
        self.host = host
        self.sim = host.sim
        self.ack_every_packets = ack_every_packets
        self.ack_delay = ack_delay
        self.on_data = on_data
        self.socket = UDPSocket(host, local_port=port, charge_costs=charge_costs)
        self.socket.on_receive = self._handle_packet

        self.packets_received = 0
        self.bytes_received = 0
        self.acks_sent = 0
        self._unacked_packets = 0
        self._unacked_bytes = 0
        self._last_seq: Optional[int] = None
        self._last_ts: Optional[float] = None
        self._last_src: Optional[Tuple[str, int]] = None
        self._delay_timer = Timer(self.sim, self._flush)

    def close(self) -> None:
        """Stop listening."""
        self._delay_timer.cancel()
        self.socket.close()

    # -------------------------------------------------------------- internals
    def _handle_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.payload_bytes
        self._unacked_packets += 1
        self._unacked_bytes += packet.payload_bytes
        # Typed accessors on the UDPHeader record; a datagram without the
        # field leaves the last-seen value in place.
        seq = packet.headers.seq
        if seq is not None:
            self._last_seq = seq
        ts = packet.headers.ts
        if ts is not None:
            self._last_ts = ts
        self._last_src = (packet.src, packet.sport)
        if self.on_data is not None:
            self.on_data(packet, self.sim.now)

        if self._unacked_packets >= self.ack_every_packets:
            self._flush()
        elif self.ack_delay is not None and not self._delay_timer.pending:
            self._delay_timer.start(self.ack_delay)
        elif self.ack_delay is None and self.ack_every_packets == 1:
            # Defensive: per-packet mode always flushed above.
            self._flush()

    def _flush(self) -> None:
        self._delay_timer.cancel()
        if self._unacked_packets == 0 or self._last_src is None:
            return
        addr, port = self._last_src
        self.socket.sendto(
            ACK_PAYLOAD_BYTES,
            addr,
            port,
            headers={
                "ack_seq": self._last_seq,
                "ts_echo": self._last_ts,
                "acked_packets": self._unacked_packets,
                "acked_bytes": self._unacked_bytes,
                "total_received": self.packets_received,
            },
        )
        self.acks_sent += 1
        self._unacked_packets = 0
        self._unacked_bytes = 0


class FeedbackReport(tuple):
    """``(nsent, nrecd, lossmode, rtt)`` — exactly the cm_update arguments."""

    __slots__ = ()

    def __new__(cls, nsent: int, nrecd: int, lossmode: str, rtt: float):
        return super().__new__(cls, (nsent, nrecd, lossmode, rtt))

    @property
    def nsent(self) -> int:
        return self[0]

    @property
    def nrecd(self) -> int:
        return self[1]

    @property
    def lossmode(self) -> str:
        return self[2]

    @property
    def rtt(self) -> float:
        return self[3]


class AppFeedbackTracker:
    """Sender-side translation of application ACKs into ``cm_update`` reports.

    The sender registers every transmission with :meth:`on_sent` and feeds
    every acknowledgement packet to :meth:`on_ack`, which returns the
    :class:`FeedbackReport` to pass to ``cm_update`` (or ``None`` if the
    acknowledgement carried no new information).  Sequence numbers are
    assumed monotonically increasing per flow; a gap between the highest
    acknowledged sequence and the sequences recorded as sent is interpreted
    as loss (transient for isolated gaps, persistent when more than half of
    an acknowledgement batch is missing).
    """

    def __init__(self) -> None:
        #: Outstanding transmissions: seq -> payload bytes.
        self._in_flight: Dict[int, int] = {}
        self._highest_acked_seq: Optional[int] = None
        self.bytes_reported_sent = 0
        self.bytes_reported_received = 0
        self.loss_events = 0

    @property
    def in_flight_packets(self) -> int:
        """Transmissions not yet resolved by feedback."""
        return len(self._in_flight)

    def on_sent(self, seq: int, nbytes: int) -> None:
        """Record a transmission awaiting acknowledgement."""
        self._in_flight[seq] = nbytes

    def on_ack(self, ack_seq: int, ts_echo: Optional[float], now: float) -> Optional[FeedbackReport]:
        """Process an acknowledgement for ``ack_seq`` (and everything below it).

        Returns the report for ``cm_update`` or ``None`` for stale ACKs.
        """
        if ack_seq is None:
            return None
        if self._highest_acked_seq is not None and ack_seq <= self._highest_acked_seq:
            return None
        self._highest_acked_seq = ack_seq

        received_bytes = 0
        lost_bytes = 0
        lost_packets = 0
        received_packets = 0
        for seq in sorted(list(self._in_flight)):
            if seq > ack_seq:
                break
            nbytes = self._in_flight.pop(seq)
            if seq == ack_seq:
                received_bytes += nbytes
                received_packets += 1
            else:
                lost_bytes += nbytes
                lost_packets += 1
        if received_bytes == 0 and lost_bytes == 0:
            return None

        rtt = 0.0
        if ts_echo is not None:
            rtt = max(0.0, now - ts_echo)

        if lost_packets == 0:
            lossmode = CM_NO_CONGESTION
        elif lost_packets > max(1, received_packets):
            lossmode = CM_PERSISTENT_CONGESTION
            self.loss_events += 1
        else:
            lossmode = CM_TRANSIENT_CONGESTION
            self.loss_events += 1

        nsent = received_bytes + lost_bytes
        self.bytes_reported_sent += nsent
        self.bytes_reported_received += received_bytes
        return FeedbackReport(nsent, received_bytes, lossmode, rtt)

    def on_cumulative_ack(
        self,
        acked_packets: int,
        acked_bytes: int,
        ts_echo: Optional[float],
        now: float,
        highest_seq: Optional[int] = None,
    ) -> Optional[FeedbackReport]:
        """Process a batched acknowledgement covering ``acked_packets`` datagrams.

        Used with :class:`AckReflector` batching (Figure 10): the report
        resolves the oldest in-flight datagrams up to ``highest_seq`` and
        treats the difference between what was sent and what the receiver
        counted as loss.
        """
        if acked_packets <= 0:
            return None
        resolved_bytes = 0
        resolved_packets = 0
        for seq in sorted(list(self._in_flight)):
            if highest_seq is not None and seq > highest_seq:
                break
            resolved_bytes += self._in_flight.pop(seq)
            resolved_packets += 1
        if resolved_packets == 0:
            return None
        received_bytes = min(acked_bytes, resolved_bytes)
        lost_packets = max(0, resolved_packets - acked_packets)
        rtt = max(0.0, now - ts_echo) if ts_echo is not None else 0.0
        if lost_packets == 0:
            lossmode = CM_NO_CONGESTION
        elif lost_packets > max(1, acked_packets):
            lossmode = CM_PERSISTENT_CONGESTION
            self.loss_events += 1
        else:
            lossmode = CM_TRANSIENT_CONGESTION
            self.loss_events += 1
        self.bytes_reported_sent += resolved_bytes
        self.bytes_reported_received += received_bytes
        return FeedbackReport(resolved_bytes, received_bytes, lossmode, rtt)
