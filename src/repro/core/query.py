"""The network-state snapshot returned by ``cm_query`` and rate callbacks."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """What the CM currently believes about a flow's network path.

    This is the information the paper's ``cm_query()`` exposes so that a
    server can "make an informed decision about the data encoding to
    transmit (e.g., a large color or smaller grey-scale image)", and the
    payload of the ``cmapp_update`` rate callback.

    Attributes
    ----------
    rate:
        Estimated sustainable sending rate, in **bytes per second**.
    srtt, rttvar:
        Smoothed round-trip time and its deviation, in seconds (shared
        across the whole macroflow).
    loss_rate:
        Exponentially weighted estimate of the fraction of bytes lost.
    cwnd_bytes:
        The macroflow's current congestion window.
    mtu:
        Maximum transmission unit towards this destination.
    """

    rate: float
    srtt: float
    rttvar: float
    loss_rate: float
    cwnd_bytes: float
    mtu: int

    @property
    def bandwidth_bps(self) -> float:
        """The rate expressed in bits per second."""
        return self.rate * 8.0

    @property
    def rto(self) -> float:
        """A retransmission-timeout-style conservative delay bound."""
        return self.srtt + 4.0 * self.rttvar
