"""Per-flow state and callback delivery channels.

A :class:`Flow` is the CM's view of one client stream (identified by the
usual 5-tuple).  Flows carry no congestion state of their own — that lives
in the :class:`~repro.core.macroflow.Macroflow` they belong to — but they do
record the client's registered callbacks, rate-change thresholds and
bookkeeping counters.

Callback delivery is abstracted behind a *notification channel* so the same
CM code serves both kinds of client the paper describes:

* in-kernel clients (TCP/CM, CM-UDP sockets) get direct function calls
  (:class:`DirectChannel`);
* user-space clients get their notifications posted to a libcm control
  socket (:class:`repro.core.libcm.LibCM` provides that channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from .query import QueryResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .macroflow import Macroflow

__all__ = ["Flow", "FlowStats", "NotificationChannel", "DirectChannel"]

#: Signature of a send-grant callback: ``cmapp_send(flow_id)``.
SendCallback = Callable[[int], None]
#: Signature of a rate-change callback: ``cmapp_update(flow_id, status)``.
UpdateCallback = Callable[[int, QueryResult], None]


class NotificationChannel:
    """How the CM delivers callbacks to a particular client."""

    #: Whether ``cm_request`` requires a send callback registered directly
    #: with the kernel (true for in-kernel clients; user-space clients keep
    #: their callbacks inside libcm instead).
    requires_send_callback = True

    def post_send_grant(self, flow: "Flow") -> None:
        """Deliver permission for ``flow`` to send up to one MTU."""
        raise NotImplementedError

    def post_status_update(self, flow: "Flow", status: QueryResult) -> None:
        """Deliver a network-conditions-changed notification for ``flow``."""
        raise NotImplementedError


class DirectChannel(NotificationChannel):
    """Same-address-space callbacks for in-kernel clients.

    Callbacks are dispatched through the simulator's "call soon" queue
    rather than invoked inline, which mirrors how the kernel defers the
    client's send routine out of the CM's own critical section and avoids
    unbounded recursion (grant -> send -> notify -> grant -> ...).
    """

    requires_send_callback = True

    def __init__(self, sim):
        self._sim = sim

    def post_send_grant(self, flow: "Flow") -> None:
        if flow.send_callback is None:
            return
        self._sim.call_soon(flow.send_callback, flow.flow_id)

    def post_status_update(self, flow: "Flow", status: QueryResult) -> None:
        if flow.update_callback is None:
            return
        self._sim.call_soon(flow.update_callback, flow.flow_id, status)


@dataclass
class FlowStats:
    """Counters the CM keeps per flow (read by tests and experiments)."""

    requests: int = 0
    grants: int = 0
    updates: int = 0
    notifies: int = 0
    bytes_sent: int = 0
    bytes_acked: int = 0
    rate_callbacks: int = 0


class Flow:
    """One CM client stream.

    Instances are created by :meth:`repro.core.manager.CongestionManager.cm_open`
    and referenced everywhere else by their integer ``flow_id`` handle, just
    like the paper's ``cm_flowid``.
    """

    STATE_OPEN = "open"
    STATE_CLOSED = "closed"

    def __init__(
        self,
        flow_id: int,
        src: str,
        dst: str,
        sport: int,
        dport: int,
        protocol: str,
        channel: NotificationChannel,
    ):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.protocol = protocol
        self.channel = channel
        self.state = self.STATE_OPEN
        self.macroflow: Optional["Macroflow"] = None

        self.send_callback: Optional[SendCallback] = None
        self.update_callback: Optional[UpdateCallback] = None
        #: Rate-change notification thresholds set via ``cm_thresh``; the
        #: callback fires when the rate falls by ``thresh_down`` or grows by
        #: ``thresh_up`` relative to the last value reported to the client.
        self.thresh_down: float = 1.25
        self.thresh_up: float = 1.25
        self.last_notified_rate: Optional[float] = None

        #: Grants issued to this flow that have not yet been matched by a
        #: ``cm_notify`` (either a transmission or an explicit decline).
        self.granted_unnotified: int = 0
        #: Bytes this flow has in flight according to notify/update accounting.
        self.outstanding_bytes: int = 0
        self.stats = FlowStats()

    # ------------------------------------------------------------------ state
    @property
    def is_open(self) -> bool:
        """True until ``cm_close`` is called for this flow."""
        return self.state == self.STATE_OPEN

    @property
    def key(self) -> tuple:
        """The (src, dst, sport, dport, protocol) tuple identifying the flow."""
        return (self.src, self.dst, self.sport, self.dport, self.protocol)

    def close(self) -> None:
        """Mark the flow closed; the manager handles all detachment."""
        self.state = self.STATE_CLOSED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flow {self.flow_id} {self.protocol} {self.src}:{self.sport}->"
            f"{self.dst}:{self.dport} {self.state}>"
        )
