"""Shared round-trip-time estimation.

The CM computes the smoothed RTT (srtt) and RTT deviation per *macroflow*,
combining samples from every constituent flow to the same receiver — the
paper points out this gives TCP a better average than each connection could
compute alone.  The estimator follows the standard Jacobson/Karels EWMA
filters (RFC 6298 constants), with the RTO clamped to the era-appropriate
bounds in :mod:`repro.core.constants`.
"""

from __future__ import annotations

from .constants import DEFAULT_RTT_SECONDS, MAX_RTO_SECONDS, MIN_RTO_SECONDS

__all__ = ["RttEstimator"]

# Jacobson/Karels filter gains.
_SRTT_GAIN = 1.0 / 8.0
_RTTVAR_GAIN = 1.0 / 4.0


class RttEstimator:
    """EWMA smoothed RTT / deviation / retransmission timeout estimator."""

    def __init__(self, initial_rtt: float = DEFAULT_RTT_SECONDS):
        self._initial_rtt = initial_rtt
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self.samples: int = 0
        self.last_sample: float = 0.0

    @property
    def has_samples(self) -> bool:
        """True once at least one valid RTT sample has been folded in."""
        return self.samples > 0

    def sample(self, rtt: float) -> None:
        """Fold one RTT measurement (seconds) into the smoothed estimates.

        Non-positive samples are ignored: they arise from clients that have
        no measurement for a particular update (the paper's API allows
        passing zero).
        """
        if rtt <= 0:
            return
        self.last_sample = rtt
        if self.samples == 0:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.srtt += _SRTT_GAIN * err
            self.rttvar += _RTTVAR_GAIN * (abs(err) - self.rttvar)
        self.samples += 1

    def smoothed_rtt(self) -> float:
        """Best current RTT estimate (falls back to the configured initial RTT)."""
        if self.has_samples:
            return self.srtt
        return self._initial_rtt

    def deviation(self) -> float:
        """Current RTT deviation estimate."""
        if self.has_samples:
            return self.rttvar
        return self._initial_rtt / 2.0

    def rto(self) -> float:
        """Retransmission timeout: ``srtt + 4 * rttvar``, clamped."""
        value = self.smoothed_rtt() + 4.0 * self.deviation()
        return min(MAX_RTO_SECONDS, max(MIN_RTO_SECONDS, value))

    def reset(self) -> None:
        """Discard all samples (used when a macroflow is split)."""
        self.srtt = 0.0
        self.rttvar = 0.0
        self.samples = 0
        self.last_sample = 0.0
