"""Exceptions raised by the Congestion Manager API."""

from __future__ import annotations

__all__ = ["CMError", "UnknownFlowError", "FlowClosedError", "NotRegisteredError"]


class CMError(Exception):
    """Base class for all Congestion Manager errors."""


class UnknownFlowError(CMError):
    """A ``cm_flowid`` was passed that the CM has never issued (or has retired)."""


class FlowClosedError(CMError):
    """The operation requires an open flow but ``cm_close`` was already called."""


class NotRegisteredError(CMError):
    """A callback-requiring operation was invoked before the callback was registered.

    For example calling ``cm_request`` on a flow that never called
    ``cm_register_send`` would leave the CM with no way to grant the
    request.
    """
