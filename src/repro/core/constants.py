"""Shared constants for the Congestion Manager.

The loss-mode values mirror the paper's ``cm_update`` semantics: the CM
distinguishes *transient* congestion (one packet lost in a window, the TCP
triple-duplicate-ACK case), *persistent* congestion (a retransmission
timeout, signalled with the ``CM_LOST_FEEDBACK`` option in the paper), and
congestion signalled by ECN marks rather than drops.
"""

from __future__ import annotations

__all__ = [
    "CM_NO_CONGESTION",
    "CM_TRANSIENT_CONGESTION",
    "CM_PERSISTENT_CONGESTION",
    "CM_ECN_CONGESTION",
    "LOSS_MODES",
    "DEFAULT_RTT_SECONDS",
    "MIN_RTO_SECONDS",
    "MAX_RTO_SECONDS",
    "MACROFLOW_IDLE_TIMEOUT",
    "GRANT_BATCH_SIZE",
]

#: Feedback reported no congestion: all bytes covered by the update arrived.
CM_NO_CONGESTION = "no_congestion"
#: Mild congestion: isolated loss within a window (TCP's three duplicate ACKs).
CM_TRANSIENT_CONGESTION = "transient"
#: Persistent congestion: a whole window (or feedback itself) was lost, the
#: situation a TCP retransmission timeout signals (``CM_LOST_FEEDBACK``).
CM_PERSISTENT_CONGESTION = "persistent"
#: Congestion signalled by an ECN Congestion-Experienced mark (RFC 2481/3168).
CM_ECN_CONGESTION = "ecn"

LOSS_MODES = (
    CM_NO_CONGESTION,
    CM_TRANSIENT_CONGESTION,
    CM_PERSISTENT_CONGESTION,
    CM_ECN_CONGESTION,
)

#: RTT assumed before the first sample arrives (also TCP's classic initial RTO base).
DEFAULT_RTT_SECONDS = 0.2
#: Lower and upper clamps on the retransmission timeout.
MIN_RTO_SECONDS = 0.2
MAX_RTO_SECONDS = 60.0

#: How long a macroflow's congestion state survives after its last flow
#: closes.  Keeping it alive is what lets a later connection to the same
#: destination skip slow start (the paper's Figure 7 benefit).
MACROFLOW_IDLE_TIMEOUT = 120.0

#: Default upper bound on grants handed out per scheduler wakeup per
#: macroflow in one batched dispatch pass (see ``CongestionManager``).  The
#: value only caps how much bookkeeping is amortised per pass — service
#: order and window semantics are independent of it.
GRANT_BATCH_SIZE = 32
