"""Flow schedulers: apportioning a macroflow's window among its flows.

The congestion controller decides how much a macroflow may have in flight;
the scheduler decides which constituent flow's pending ``cm_request`` is
granted next.  The paper's implementation uses an unweighted round-robin
scheduler; a weighted variant is provided for the ablation study.

A scheduler only orders *requests* — each entry corresponds to one
``cm_request`` call, i.e. permission to send up to one MTU.

Since PR 1 the manager drains requests in batches: ``next_batch(limit)``
pops up to ``limit`` requests in one call, with the invariant that the
returned sequence is exactly what ``limit`` successive ``next_flow()``
calls would have produced (see ``docs/batched_dispatch.md``).  Batching
changes the dispatch cost, never the service order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

__all__ = ["Scheduler", "RoundRobinScheduler", "WeightedRoundRobinScheduler"]


class Scheduler(ABC):
    """Queue of pending send requests for the flows of one macroflow."""

    name = "base"

    @abstractmethod
    def enqueue(self, flow_id: int) -> None:
        """Record one pending request (one MTU's worth) for ``flow_id``."""

    @abstractmethod
    def next_flow(self) -> Optional[int]:
        """Pop and return the flow whose request should be granted next."""

    @abstractmethod
    def pending_requests(self, flow_id: Optional[int] = None) -> int:
        """Number of queued requests, in total or for one flow."""

    @abstractmethod
    def remove_flow(self, flow_id: int) -> None:
        """Discard every pending request belonging to ``flow_id``."""

    def has_pending(self) -> bool:
        """True if any request is waiting."""
        return self.pending_requests() > 0

    def next_batch(self, limit: int) -> List[int]:
        """Pop up to ``limit`` requests in grant order.

        The returned sequence is exactly what ``limit`` successive
        :meth:`next_flow` calls would have produced — batching changes the
        dispatch cost, never the service order.  Subclasses may override
        this loop with something cheaper.
        """
        batch: List[int] = []
        append = batch.append
        while len(batch) < limit:
            flow_id = self.next_flow()
            if flow_id is None:
                break
            append(flow_id)
        return batch


class RoundRobinScheduler(Scheduler):
    """Unweighted round robin — the paper's default.

    Each flow keeps a FIFO count of its pending requests and flows are
    served in a circular order, one request per turn, which gives the
    "loose ordering ... provided no flows are starved" behaviour §2.2.2
    requires.
    """

    name = "round-robin"

    def __init__(self) -> None:
        # OrderedDict preserves the service order; counts are pending requests.
        self._pending: "OrderedDict[int, int]" = OrderedDict()

    def enqueue(self, flow_id: int) -> None:
        if flow_id in self._pending:
            self._pending[flow_id] += 1
        else:
            self._pending[flow_id] = 1

    def next_flow(self) -> Optional[int]:
        if not self._pending:
            return None
        flow_id, count = next(iter(self._pending.items()))
        if count <= 1:
            del self._pending[flow_id]
        else:
            # Serve one request and rotate the flow to the back of the ring.
            del self._pending[flow_id]
            self._pending[flow_id] = count - 1
        return flow_id

    def next_batch(self, limit: int) -> List[int]:
        """Round-robin batch pop without per-grant ring rotation.

        A *complete* round of :meth:`next_flow` calls rotates every flow to
        the back once, which leaves the surviving flows in their original
        relative order — so whole rounds can be served by decrementing
        counts in place.  Only the final partial round has to perform the
        real head-of-ring rotation to keep the order identical to the
        one-at-a-time scheduler.
        """
        pending = self._pending
        batch: List[int] = []
        append = batch.append
        while pending and len(batch) < limit:
            room = limit - len(batch)
            flows = list(pending.items())
            if room >= len(flows):
                for flow_id, count in flows:
                    append(flow_id)
                    if count <= 1:
                        del pending[flow_id]
                    else:
                        pending[flow_id] = count - 1
            else:
                for flow_id, count in flows[:room]:
                    append(flow_id)
                    del pending[flow_id]
                    if count > 1:
                        pending[flow_id] = count - 1
                break
        return batch

    def pending_requests(self, flow_id: Optional[int] = None) -> int:
        if flow_id is not None:
            return self._pending.get(flow_id, 0)
        return sum(self._pending.values())

    def remove_flow(self, flow_id: int) -> None:
        self._pending.pop(flow_id, None)


class WeightedRoundRobinScheduler(Scheduler):
    """Weighted round robin with per-flow credit counters.

    Flows with weight *w* receive *w* grants per scheduling round.  Weights
    default to 1, so with no explicit configuration this degenerates to the
    unweighted scheduler.
    """

    name = "weighted-round-robin"

    def __init__(self, default_weight: int = 1):
        if default_weight < 1:
            raise ValueError("default weight must be >= 1")
        self.default_weight = default_weight
        self._weights: Dict[int, int] = {}
        self._queues: "OrderedDict[int, int]" = OrderedDict()
        self._credits: Dict[int, int] = {}
        self._ring: Deque[int] = deque()

    def set_weight(self, flow_id: int, weight: int) -> None:
        """Assign a relative weight to a flow (takes effect next round)."""
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self._weights[flow_id] = weight

    def weight_of(self, flow_id: int) -> int:
        """Current weight for a flow (the default when unset)."""
        return self._weights.get(flow_id, self.default_weight)

    def enqueue(self, flow_id: int) -> None:
        if flow_id not in self._queues:
            self._queues[flow_id] = 0
            self._ring.append(flow_id)
            self._credits.setdefault(flow_id, self.weight_of(flow_id))
        self._queues[flow_id] += 1

    def next_flow(self) -> Optional[int]:
        attempts = len(self._ring)
        while attempts > 0 and self._ring:
            flow_id = self._ring[0]
            pending = self._queues.get(flow_id, 0)
            if pending == 0:
                self._ring.popleft()
                self._queues.pop(flow_id, None)
                self._credits.pop(flow_id, None)
                attempts -= 1
                continue
            if self._credits.get(flow_id, 0) <= 0:
                # Out of credit: replenish and move to the back of the ring.
                self._credits[flow_id] = self.weight_of(flow_id)
                self._ring.rotate(-1)
                attempts -= 1
                continue
            self._credits[flow_id] -= 1
            self._queues[flow_id] -= 1
            if self._queues[flow_id] == 0:
                self._ring.popleft()
                self._queues.pop(flow_id, None)
                self._credits.pop(flow_id, None)
            return flow_id
        # Everybody was out of credit this pass; replenish and retry once.
        if self._ring:
            for flow_id in self._ring:
                self._credits[flow_id] = self.weight_of(flow_id)
            return self.next_flow()
        return None

    def next_batch(self, limit: int) -> List[int]:
        """Weighted batch pop without per-grant credit/ring churn.

        Successive :meth:`next_flow` calls serve the head flow repeatedly
        until its credit or queue runs out, so a batch can take
        ``min(credit, pending, room)`` grants from the head in one step
        instead of paying the full credit-check/decrement cycle per MTU.
        Rotation and replenishment happen exactly where the one-at-a-time
        loop performs them, which keeps the batch output order-identical
        (the fairness regression test replays both against random
        workloads).
        """
        batch: List[int] = []
        ring = self._ring
        queues = self._queues
        credits = self._credits
        filled = 0
        while ring and filled < limit:
            flow_id = ring[0]
            pending = queues.get(flow_id, 0)
            if pending == 0:
                # Drained entry left behind by remove_flow bookkeeping.
                ring.popleft()
                queues.pop(flow_id, None)
                credits.pop(flow_id, None)
                continue
            credit = credits.get(flow_id, 0)
            if credit <= 0:
                # Out of credit: replenish and move to the back of the ring
                # (the same order next_flow's rotation produces).
                credits[flow_id] = self.weight_of(flow_id)
                ring.rotate(-1)
                continue
            take = min(credit, pending, limit - filled)
            batch.extend([flow_id] * take)
            filled += take
            credits[flow_id] = credit - take
            if pending == take:
                ring.popleft()
                queues.pop(flow_id, None)
                credits.pop(flow_id, None)
            else:
                queues[flow_id] = pending - take
        return batch

    def pending_requests(self, flow_id: Optional[int] = None) -> int:
        if flow_id is not None:
            return self._queues.get(flow_id, 0)
        return sum(self._queues.values())

    def remove_flow(self, flow_id: int) -> None:
        self._queues.pop(flow_id, None)
        self._credits.pop(flow_id, None)
        try:
            self._ring.remove(flow_id)
        except ValueError:
            pass
