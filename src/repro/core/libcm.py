"""libcm: the user-space Congestion Manager library.

User-space applications do not call into the kernel CM directly.  They link
against *libcm*, which

* wraps every ``cm_*`` call in the appropriate system call / ioctl on a
  single per-application **control socket** (charged to the host CPU
  ledger, since these crossings are exactly what the paper's API-overhead
  study measures), and
* turns kernel-side events (send grants, network-status changes) into the
  application's registered ``cmapp_send`` / ``cmapp_update`` callbacks.

The kernel/user interface mirrors the paper's §2.2 design:

1. the application ``select()``\\ s on the control socket — the write bit
   means "some flow may send", the exception bit means "network conditions
   changed";
2. an ``ioctl`` then extracts *all* currently sendable flow IDs (one
   crossing no matter how many flows became ready — the batching argument
   of §2.2.2), or the latest status for a flow (older statuses are
   discarded, again per §2.2.2: "only the current status matters").

Three application event-loop integrations are modelled via ``mode``:
``"select"`` (the default: the app's own select loop includes the control
socket), ``"sigio"`` (the app asked for SIGIO delivery, which costs a signal
per wakeup), and ``"poll"`` (the app checks explicitly from its own timer
loop by calling :meth:`LibCM.poll`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional

from .flow import Flow, NotificationChannel
from .query import QueryResult

__all__ = ["LibCM", "ControlSocketChannel"]


class ControlSocketChannel(NotificationChannel):
    """The kernel side of a libcm control socket.

    The CM posts events here; libcm drains them from the application's
    context.  User-space flows keep their callbacks inside libcm, so the
    kernel does not require a send callback on the flow record.
    """

    requires_send_callback = False

    def __init__(self, libcm: "LibCM"):
        self._libcm = libcm

    def post_send_grant(self, flow: Flow) -> None:
        self._libcm._kernel_post_send_grant(flow.flow_id)

    def post_status_update(self, flow: Flow, status: QueryResult) -> None:
        self._libcm._kernel_post_status(flow.flow_id, status)

    def wants_status_updates(self, flow_id: int) -> bool:
        """The CM asks this before generating rate callbacks for the flow."""
        return self._libcm.has_update_callback(flow_id)


class LibCM:
    """Per-application user-space CM library instance.

    Parameters
    ----------
    host:
        The host the application runs on; supplies the kernel CM
        (``host.cm``), the CPU cost ledger and the simulator clock.
    mode:
        Event-loop integration: ``"select"``, ``"sigio"`` or ``"poll"``.
    wakeup_latency:
        Simulated delay between the kernel posting an event and the
        application's event loop getting around to servicing it (scheduler
        latency).  Kept small but non-zero so callback dispatch never
        happens "inside" the kernel event that produced it.
    """

    def __init__(self, host, mode: str = "select", wakeup_latency: float = 50e-6):
        if host.cm is None:
            raise RuntimeError("host has no Congestion Manager attached")
        if mode not in ("select", "sigio", "poll"):
            raise ValueError(f"unknown libcm mode {mode!r}")
        self.host = host
        self.cm = host.cm
        self.sim = host.sim
        self.costs = host.costs
        self.mode = mode
        self.wakeup_latency = wakeup_latency

        self._channel = ControlSocketChannel(self)
        self._send_callbacks: Dict[int, Callable[[int], None]] = {}
        self._update_callbacks: Dict[int, Callable[[int, QueryResult], None]] = {}
        #: Flows with undelivered send grants (flow id -> number of grants).
        self._sendable: "OrderedDict[int, int]" = OrderedDict()
        #: Latest undelivered status per flow (older ones are overwritten).
        self._pending_status: Dict[int, QueryResult] = {}
        self._dispatch_scheduled = False

        # Instrumentation used by the API-overhead experiments.
        self.stats = {
            "selects": 0,
            "ioctls": 0,
            "signals": 0,
            "dispatches": 0,
            "send_callbacks": 0,
            "update_callbacks": 0,
        }

    # ====================================================================== #
    # User-side API wrappers (each charges its kernel crossing)              #
    # ====================================================================== #
    def cm_open(self, src: str, dst: str, sport: int = 0, dport: int = 0, protocol: str = "udp") -> int:
        """Open a CM flow on behalf of the application."""
        self._charge_syscall("send_call")
        return self.cm.cm_open(src, dst, sport, dport, protocol, channel=self._channel)

    def cm_close(self, flow_id: int) -> None:
        """Close the flow and forget its callbacks.

        Undelivered send grants are returned to the kernel with
        ``cm_notify(flow_id, 0)`` *before* the flow is closed — the same
        decline path :meth:`_drain` uses for unregistered callbacks —
        so the macroflow window they reserve is handed to sibling flows
        instead of being silently dropped along with the queue entry.
        """
        self._charge_syscall("send_call")
        self._send_callbacks.pop(flow_id, None)
        self._update_callbacks.pop(flow_id, None)
        self._pending_status.pop(flow_id, None)
        grants = self._sendable.pop(flow_id, 0)
        while grants:
            for _ in range(grants):
                self.cm.cm_notify(flow_id, 0)
            # Returning window can re-grant this same flow from requests it
            # still has queued; keep returning until the kernel stops.
            grants = self._sendable.pop(flow_id, 0)
        self.cm.cm_close(flow_id)

    def cm_mtu(self, flow_id: int) -> int:
        """MTU towards the flow's destination."""
        self._charge_ioctl()
        return self.cm.cm_mtu(flow_id)

    def cm_register_send(self, flow_id: int, callback: Callable[[int], None]) -> None:
        """Register the application's ``cmapp_send``; purely a library operation."""
        self._send_callbacks[flow_id] = callback

    def cm_register_update(self, flow_id: int, callback: Callable[[int, QueryResult], None]) -> None:
        """Register the application's ``cmapp_update``; purely a library operation."""
        self._update_callbacks[flow_id] = callback

    def cm_thresh(self, flow_id: int, down: float, up: float) -> None:
        """Set the rate-change notification thresholds."""
        self._charge_ioctl()
        self.cm.cm_thresh(flow_id, down, up)

    def cm_request(self, flow_id: int) -> None:
        """Request permission to send up to one MTU on the flow."""
        if flow_id not in self._send_callbacks:
            # Mirror the kernel's own check for in-kernel clients: granting
            # would have nowhere to go.
            raise LookupError(f"flow {flow_id}: cm_request before cm_register_send")
        self._charge_ioctl()
        self.cm.cm_request(flow_id)

    def cm_bulk_request(self, flow_ids) -> None:
        """Request permission for many flows with a single kernel crossing."""
        flow_ids = list(flow_ids)
        for flow_id in flow_ids:
            if flow_id not in self._send_callbacks:
                raise LookupError(f"flow {flow_id}: cm_bulk_request before cm_register_send")
        self._charge_ioctl()
        self.cm.cm_bulk_request(flow_ids)

    def cm_update(self, flow_id: int, nsent: int, nrecd: int, lossmode: str, rtt: float) -> None:
        """Report receiver feedback on behalf of the application."""
        self._charge_ioctl()
        self.cm.cm_update(flow_id, nsent, nrecd, lossmode, rtt)

    def cm_notify(self, flow_id: int, nsent: int) -> None:
        """Explicit transmission notification (unconnected sockets / declined grants)."""
        self._charge_ioctl()
        self.cm.cm_notify(flow_id, nsent)

    def cm_query(self, flow_id: int) -> QueryResult:
        """Ask the kernel for the flow's current rate / RTT / loss estimate."""
        self._charge_ioctl()
        return self.cm.cm_query(flow_id)

    # ====================================================================== #
    # Kernel-side event posting                                              #
    # ====================================================================== #
    def _kernel_post_send_grant(self, flow_id: int) -> None:
        self._sendable[flow_id] = self._sendable.get(flow_id, 0) + 1
        self._wakeup()

    def _kernel_post_status(self, flow_id: int, status: QueryResult) -> None:
        # Only the most recent status matters (§2.2.2); overwrite any older one.
        self._pending_status[flow_id] = status
        self._wakeup()

    def has_update_callback(self, flow_id: int) -> bool:
        """Whether the application registered a rate callback for this flow."""
        return flow_id in self._update_callbacks

    def _wakeup(self) -> None:
        if self.mode == "poll":
            # Polling applications drain events on their own schedule.
            return
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True
        self.sim.schedule(self.wakeup_latency, self._dispatch_from_event_loop)

    # ====================================================================== #
    # Event delivery into the application                                    #
    # ====================================================================== #
    def _dispatch_from_event_loop(self) -> None:
        self._dispatch_scheduled = False
        if self.mode == "sigio":
            self._charge("signal_delivery")
            self.stats["signals"] += 1
        # The application's select() returns with the control socket ready.
        self._charge("select_call")
        self.stats["selects"] += 1
        self._drain()

    def poll(self) -> int:
        """Explicit non-blocking check used by polling / rate-clocked applications.

        Performs the select-style readiness test on the control socket and
        drains any pending events.  Returns the number of callbacks
        delivered.
        """
        self._charge("select_call")
        self.stats["selects"] += 1
        return self._drain()

    def _drain(self) -> int:
        delivered = 0
        self.stats["dispatches"] += 1
        if self._sendable:
            # One ioctl returns the full list of sendable flows, however many
            # became ready — this is the batching §2.2.2 argues for.
            self._charge_ioctl()
            ready = list(self._sendable.items())
            self._sendable.clear()
            for flow_id, grants in ready:
                callback = self._send_callbacks.get(flow_id)
                if callback is None:
                    # The application never registered; return the grants so
                    # other flows on the macroflow are not starved.
                    for _ in range(grants):
                        self.cm.cm_notify(flow_id, 0)
                    continue
                for _ in range(grants):
                    self._charge("libcm_dispatch")
                    self.stats["send_callbacks"] += 1
                    callback(flow_id)
                    delivered += 1
        if self._pending_status:
            self._charge_ioctl()
            statuses = list(self._pending_status.items())
            self._pending_status.clear()
            for flow_id, status in statuses:
                callback = self._update_callbacks.get(flow_id)
                if callback is None:
                    continue
                self._charge("libcm_dispatch")
                self.stats["update_callbacks"] += 1
                callback(flow_id, status)
                delivered += 1
        return delivered

    # ====================================================================== #
    # Cost accounting helpers                                                #
    # ====================================================================== #
    def _charge(self, operation: str) -> None:
        if self.costs is not None:
            self.costs.charge_operation(operation, category="libcm")

    def _charge_ioctl(self) -> None:
        if self.costs is not None:
            self.costs.charge_operation("syscall", category="libcm")
            self.costs.charge_operation("ioctl", category="libcm")
        self.stats["ioctls"] += 1

    def _charge_syscall(self, flavour: str) -> None:
        if self.costs is not None:
            self.costs.syscall(flavour, category="libcm")
