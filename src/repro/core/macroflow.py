"""Macroflows: the CM's unit of congestion-state aggregation.

A macroflow is "a group of flows that share the same congestion state,
control algorithms, and state information in the CM".  By default every
flow to the same destination host joins the same macroflow; applications
can split a flow out into its own macroflow or merge flows explicitly when
the default aggregation is unsuitable (for example under differentiated
services, §5 of the paper).

The macroflow owns:

* the congestion controller (window / rate),
* the scheduler that apportions the window among constituent flows,
* the shared RTT estimator,
* the outstanding/reserved byte accounting used to decide when the window
  is "open".
"""

from __future__ import annotations

from typing import Dict, Optional

from .congestion import CongestionController
from .constants import CM_NO_CONGESTION
from .flow import Flow
from .query import QueryResult
from .rtt import RttEstimator
from .scheduler import Scheduler

__all__ = ["Macroflow"]

#: Smoothing gain for the loss-rate EWMA.
_LOSS_EWMA_GAIN = 0.25

#: Congestion-window validation: the window only grows while the macroflow is
#: using at least this fraction of it.  The value bounds how far the CM's
#: rate estimate can exceed what an application-limited (self-clocked) sender
#: actually uses — a factor of four of headroom, enough for a layered client
#: to discover that the next (double-rate) layer would fit.
_WINDOW_VALIDATION_FRACTION = 0.25


class Macroflow:
    """Shared congestion state for all flows to one destination."""

    def __init__(
        self,
        macroflow_id: int,
        key,
        mtu: int,
        controller: CongestionController,
        scheduler: Scheduler,
    ):
        self.macroflow_id = macroflow_id
        #: Aggregation key — the destination address for default macroflows,
        #: or ``None`` for private macroflows created by ``cm_split``.
        self.key = key
        self.mtu = mtu
        self.controller = controller
        self.scheduler = scheduler
        self.rtt = RttEstimator()
        self.flows: Dict[int, Flow] = {}

        #: Bytes transmitted (per cm_notify) and not yet covered by feedback.
        self.outstanding_bytes: float = 0.0
        #: Bytes' worth of grants issued but not yet notified/declined.
        self.reserved_bytes: float = 0.0
        self.loss_rate: float = 0.0

        self.bytes_sent_total: int = 0
        self.bytes_acked_total: int = 0
        self.updates_received: int = 0
        self.last_feedback_time: Optional[float] = None
        self.last_activity_time: Optional[float] = None
        #: When the controller last reacted to a congestion signal.  Several
        #: flows of one macroflow typically observe the *same* congestion
        #: event (one queue overflow drops packets from many of them within
        #: one RTT); reacting once per RTT keeps the ensemble's response
        #: equivalent to a single TCP connection's instead of halving once
        #: per constituent flow.
        self.last_congestion_reaction_time: Optional[float] = None
        self.congestion_reactions: int = 0
        self.suppressed_congestion_reports: int = 0
        # Telemetry probe slot (bound by CongestionManager.attach_telemetry);
        # None is the compiled no-op.
        self._probe_congestion = None

    # -------------------------------------------------------------- membership
    def add_flow(self, flow: Flow) -> None:
        """Attach a flow to this macroflow."""
        self.flows[flow.flow_id] = flow
        flow.macroflow = self

    def remove_flow(self, flow: Flow) -> None:
        """Detach a flow; its in-flight bytes are forgotten (they will never
        be acknowledged through the CM once the client is gone)."""
        self.flows.pop(flow.flow_id, None)
        self.scheduler.remove_flow(flow.flow_id)
        self.outstanding_bytes = max(0.0, self.outstanding_bytes - flow.outstanding_bytes)
        self.reserved_bytes = max(0.0, self.reserved_bytes - flow.granted_unnotified * self.mtu)
        flow.outstanding_bytes = 0
        flow.granted_unnotified = 0
        if flow.macroflow is self:
            flow.macroflow = None

    @property
    def is_empty(self) -> bool:
        """True when no flows are attached (state may still be retained)."""
        return not self.flows

    # ------------------------------------------------------------- accounting
    def available_window(self) -> float:
        """Bytes of congestion window not yet committed to in-flight data or grants."""
        return self.controller.cwnd - self.outstanding_bytes - self.reserved_bytes

    def window_open(self) -> bool:
        """True when another grant may be issued.

        The normal rule is that a full MTU of window must be free, which is
        what gives the CM its 1-MTU initial window for full-sized senders
        like TCP.  Flows sending small datagrams (vat's 172-byte audio
        frames) would be throttled to one packet per RTT by that rule even
        though they use only a sliver of the window, so a grant is also
        allowed whenever less than half the window is committed.
        """
        if self.available_window() >= self.mtu:
            return True
        return (self.outstanding_bytes + self.reserved_bytes) < 0.5 * self.controller.cwnd

    def grant_allowance(self, cap: int) -> int:
        """How many MTU grants :meth:`window_open` permits back-to-back, up to ``cap``.

        This replays the per-grant window check the one-at-a-time grant loop
        performed (each grant commits another MTU of reservation), so the
        batched dispatcher in the manager admits exactly as many grants as
        ``cap`` successive ``window_open()``/grant iterations would have.
        """
        cwnd = self.controller.cwnd
        mtu = self.mtu
        committed = self.outstanding_bytes + self.reserved_bytes
        half = 0.5 * cwnd
        window_floor = cwnd - mtu
        n = 0
        while n < cap and (committed <= window_floor or committed < half):
            committed += mtu
            n += 1
        return n

    def charge_transmission(self, flow: Flow, nbytes: int, now: float) -> None:
        """Account a transmission reported via ``cm_notify``."""
        if flow.granted_unnotified > 0:
            flow.granted_unnotified -= 1
            self.reserved_bytes = max(0.0, self.reserved_bytes - self.mtu)
        if nbytes > 0:
            self.outstanding_bytes += nbytes
            flow.outstanding_bytes += nbytes
            self.bytes_sent_total += nbytes
            flow.stats.bytes_sent += nbytes
        self.last_activity_time = now
        flow.stats.notifies += 1

    def apply_feedback(
        self, flow: Flow, nsent: int, nrecd: int, lossmode: str, rtt: float, now: float
    ) -> None:
        """Fold one ``cm_update`` report into the shared congestion state."""
        self.updates_received += 1
        flow.stats.updates += 1
        # Congestion-window validation (RFC 2861 spirit): the window may only
        # grow when the macroflow was actually using a substantial part of it
        # when this feedback was generated.  Without this, a self-clocked
        # client sending well below the window (e.g. the rate-callback
        # streaming application) would let the window — and therefore the
        # rate the CM reports — grow without bound on an uncongested path.
        window_limited = (
            self.outstanding_bytes + self.reserved_bytes + float(nsent)
            >= _WINDOW_VALIDATION_FRACTION * self.controller.cwnd
        )
        if rtt > 0:
            self.rtt.sample(rtt)
            observe = getattr(self.controller, "observe_rtt", None)
            if observe is not None:
                observe(self.rtt.smoothed_rtt())
        if nsent > 0:
            released = min(float(nsent), self.outstanding_bytes)
            self.outstanding_bytes -= released
            flow.outstanding_bytes = max(0, flow.outstanding_bytes - nsent)
            instantaneous_loss = max(0.0, 1.0 - float(nrecd) / float(nsent))
            self.loss_rate += _LOSS_EWMA_GAIN * (instantaneous_loss - self.loss_rate)
        if nrecd > 0:
            self.bytes_acked_total += nrecd
            flow.stats.bytes_acked += nrecd
        if lossmode == CM_NO_CONGESTION:
            if nrecd > 0 and window_limited:
                self.controller.on_ack(nrecd)
        elif self._should_react_to_congestion(now):
            self.controller.dispatch_update(nrecd, lossmode)
            self.last_congestion_reaction_time = now
            self.congestion_reactions += 1
            probe = self._probe_congestion
            if probe is not None:
                probe(now, {"macroflow": self.macroflow_id, "lossmode": lossmode,
                            "cwnd": self.controller.cwnd})
        else:
            # Another flow already reported this congestion epoch; count the
            # report but do not halve the shared window again.
            self.suppressed_congestion_reports += 1
        self.last_feedback_time = now
        self.last_activity_time = now

    def _should_react_to_congestion(self, now: float) -> bool:
        if self.last_congestion_reaction_time is None:
            return True
        return now - self.last_congestion_reaction_time >= self.rtt.smoothed_rtt()

    def clear_in_flight(self) -> None:
        """Forget all in-flight accounting (watchdog recovery after lost feedback)."""
        self.outstanding_bytes = 0.0
        self.reserved_bytes = 0.0
        for flow in self.flows.values():
            flow.outstanding_bytes = 0
            flow.granted_unnotified = 0

    # ---------------------------------------------------------------- queries
    def rate(self) -> float:
        """Current sustainable rate estimate in bytes/second."""
        return self.controller.rate_estimate(self.rtt.smoothed_rtt())

    def status(self) -> QueryResult:
        """Snapshot of the shared network-state estimate for this macroflow."""
        return QueryResult(
            rate=self.rate(),
            srtt=self.rtt.smoothed_rtt(),
            rttvar=self.rtt.deviation(),
            loss_rate=self.loss_rate,
            cwnd_bytes=self.controller.cwnd,
            mtu=self.mtu,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Macroflow {self.macroflow_id} key={self.key} flows={len(self.flows)} "
            f"cwnd={self.controller.cwnd:.0f} out={self.outstanding_bytes:.0f}>"
        )
