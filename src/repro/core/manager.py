"""The Congestion Manager.

:class:`CongestionManager` is the paper's kernel module: it owns the flow
and macroflow tables, runs the congestion controller and scheduler per
macroflow, grants transmission requests, absorbs application feedback
(``cm_update``) and transmission notifications from the IP layer
(``cm_notify``), answers ``cm_query``, and drives the rate-change callbacks
configured with ``cm_thresh``.

The public methods are a faithful rendition of the paper's API (§2.1):

=====================  =====================================================
``cm_open``            associate a (src, dst, ports, protocol) flow with the
                       CM and its per-destination macroflow
``cm_close``           release the flow
``cm_mtu``             MTU towards the destination
``cm_request``         ask for permission to send up to one MTU
``cm_register_send``   register the ``cmapp_send`` grant callback
``cm_register_update`` register the ``cmapp_update`` rate callback
``cm_thresh``          set the rate-change factors that trigger the callback
``cm_update``          report receiver feedback (bytes sent/received, loss
                       mode, RTT sample)
``cm_notify``          report that bytes actually left the host (called from
                       the IP output routine, or by the app when it declines
                       a grant)
``cm_query``           current rate / RTT / loss estimate for the flow
``cm_bulk_request``    batched requests for busy servers (§5)
``cm_split`` /
``cm_merge``           explicit macroflow construction when per-destination
                       aggregation is unsuitable
=====================  =====================================================

All byte quantities in this implementation are application payload bytes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..netsim.engine import Simulator, Timer
from .congestion import AimdWindowController, CongestionController
from .constants import (
    CM_PERSISTENT_CONGESTION,
    GRANT_BATCH_SIZE,
    LOSS_MODES,
    MACROFLOW_IDLE_TIMEOUT,
)
from .errors import FlowClosedError, NotRegisteredError, UnknownFlowError
from .flow import DirectChannel, Flow, NotificationChannel
from .macroflow import Macroflow
from .query import QueryResult
from .scheduler import RoundRobinScheduler, Scheduler

__all__ = ["CongestionManager"]

ControllerFactory = Callable[[int], CongestionController]
SchedulerFactory = Callable[[], Scheduler]


class CongestionManager:
    """Sender-side integrated congestion management.

    Parameters
    ----------
    host:
        The :class:`~repro.netsim.node.Host` this CM is installed on.  The
        CM uses the host's simulator clock, MTU and CPU cost ledger, and the
        host's IP layer calls :meth:`cm_notify` on every transmission
        belonging to a CM flow.
    controller_factory:
        Callable building a congestion controller for a new macroflow; the
        default is the paper's byte-counting AIMD window controller with an
        initial window of one MTU.
    scheduler_factory:
        Callable building the intra-macroflow scheduler; defaults to the
        paper's unweighted round robin.
    macroflow_idle_timeout:
        How long congestion state is retained after a macroflow's last flow
        closes.  Retention is what lets later connections to the same host
        skip slow start (Figure 7).
    grant_batch_size:
        Upper bound on how many grants one scheduler wakeup hands out per
        macroflow in a single batched pass.  Batching amortises the
        per-grant dispatch overhead; the service order is identical to the
        unbatched (``grant_batch_size=1``) loop.
    feedback_watchdog:
        Enable the timer-driven error handling that recovers a macroflow
        whose feedback stopped arriving (e.g. the application's ACK stream
        was lost) by treating the silence as persistent congestion.
    """

    def __init__(
        self,
        host,
        controller_factory: Optional[ControllerFactory] = None,
        scheduler_factory: Optional[SchedulerFactory] = None,
        macroflow_idle_timeout: float = MACROFLOW_IDLE_TIMEOUT,
        feedback_watchdog: bool = True,
        grant_batch_size: int = GRANT_BATCH_SIZE,
    ):
        if grant_batch_size < 1:
            raise ValueError("grant_batch_size must be >= 1")
        self.host = host
        self.sim: Simulator = host.sim
        self.mtu: int = host.mtu
        self.controller_factory = controller_factory or (lambda mtu: AimdWindowController(mtu))
        self.scheduler_factory = scheduler_factory or RoundRobinScheduler
        self.macroflow_idle_timeout = macroflow_idle_timeout
        self.feedback_watchdog_enabled = feedback_watchdog
        self.grant_batch_size = grant_batch_size

        self._flows: Dict[int, Flow] = {}
        self._flows_by_key: Dict[Tuple, int] = {}
        self._macroflows: Dict[int, Macroflow] = {}
        self._macroflows_by_key: Dict = {}
        self._expiry_events: Dict[int, object] = {}
        self._watchdogs: Dict[int, Timer] = {}

        self._next_flow_id = 1
        self._next_macroflow_id = 1

        # Telemetry (repro.telemetry): the grant probe slot is None (a
        # compiled no-op) until attach_telemetry binds a hub with a
        # subscribed recorder; the hub reference lets macroflows created
        # later inherit the congestion-reaction probe.
        self._telemetry_hub = None
        self._probe_grant = None

        host.attach_cm(self)

    # ====================================================================== #
    # Telemetry                                                              #
    # ====================================================================== #
    def attach_telemetry(self, hub) -> None:
        """Bind CM probes (grant dispatch, congestion reactions) to ``hub``.

        Existing macroflows get the congestion probe immediately; macroflows
        created afterwards inherit it at construction time.
        """
        self._telemetry_hub = hub
        self._probe_grant = hub.probe("cm.grant")
        probe = hub.probe("cm.congestion")
        for macroflow in self._macroflows.values():
            macroflow._probe_congestion = probe

    # ====================================================================== #
    # State management                                                       #
    # ====================================================================== #
    def cm_open(
        self,
        src: str,
        dst: str,
        sport: int = 0,
        dport: int = 0,
        protocol: str = "udp",
        channel: Optional[NotificationChannel] = None,
    ) -> int:
        """Create a CM flow and return its ``cm_flowid`` handle.

        ``src`` must be supplied (the paper added it for multihomed hosts).
        ``channel`` selects how callbacks are delivered; in-kernel clients
        omit it and get direct calls, libcm passes its control socket.
        """
        if not src or not dst:
            raise ValueError("cm_open requires both source and destination addresses")
        self._charge_kernel_op()
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        flow = Flow(
            flow_id=flow_id,
            src=src,
            dst=dst,
            sport=sport,
            dport=dport,
            protocol=protocol,
            channel=channel or DirectChannel(self.sim),
        )
        self._flows[flow_id] = flow
        self._flows_by_key[flow.key] = flow_id
        macroflow = self._macroflow_for_destination(dst)
        macroflow.add_flow(flow)
        self._cancel_expiry(macroflow)
        return flow_id

    def cm_close(self, flow_id: int) -> None:
        """Release a flow; its macroflow's congestion state is retained."""
        flow = self._get_flow(flow_id, allow_closed=True)
        if not flow.is_open:
            return
        self._charge_kernel_op()
        macroflow = flow.macroflow
        flow.close()
        if macroflow is not None:
            macroflow.remove_flow(flow)
            if macroflow.is_empty:
                self._schedule_expiry(macroflow)
            else:
                self._maybe_grant(macroflow)
        self._flows_by_key.pop(flow.key, None)
        self._flows.pop(flow_id, None)

    def cm_mtu(self, flow_id: int) -> int:
        """Maximum transmission unit towards the flow's destination."""
        self._get_flow(flow_id)
        return self.mtu

    # ====================================================================== #
    # Data transmission: request / callback                                  #
    # ====================================================================== #
    def cm_register_send(self, flow_id: int, callback) -> None:
        """Register the ``cmapp_send(flow_id)`` callback for a flow."""
        flow = self._get_flow(flow_id)
        flow.send_callback = callback

    def cm_register_update(self, flow_id: int, callback) -> None:
        """Register the ``cmapp_update(flow_id, status)`` rate callback."""
        flow = self._get_flow(flow_id)
        flow.update_callback = callback

    def cm_thresh(self, flow_id: int, down: float, up: float) -> None:
        """Set rate-change factors that trigger ``cmapp_update``.

        The callback fires when the CM's rate estimate falls to ``1/down``
        of the last reported value or grows to ``up`` times it.
        """
        if down < 1.0 or up < 1.0:
            raise ValueError("cm_thresh factors must be >= 1.0")
        flow = self._get_flow(flow_id)
        flow.thresh_down = float(down)
        flow.thresh_up = float(up)

    def cm_request(self, flow_id: int, count: int = 1) -> None:
        """Ask for permission to send; each request covers up to one MTU.

        Permission is delivered later through the flow's ``cmapp_send``
        callback when the macroflow window opens and the scheduler selects
        this flow.
        """
        if count < 1:
            raise ValueError("cm_request count must be >= 1")
        flow = self._get_flow(flow_id)
        if flow.channel.requires_send_callback and flow.send_callback is None:
            raise NotRegisteredError(
                f"flow {flow_id}: cm_request before cm_register_send"
            )
        self._charge_kernel_op()
        macroflow = flow.macroflow
        for _ in range(count):
            flow.stats.requests += 1
            macroflow.scheduler.enqueue(flow_id)
        self._maybe_grant(macroflow)
        self._arm_watchdog(macroflow)

    def cm_bulk_request(self, flow_ids: Iterable[int]) -> None:
        """Batched ``cm_request`` for many flows in one kernel crossing (§5)."""
        self._charge_kernel_op()
        touched: List[Macroflow] = []
        for flow_id in flow_ids:
            flow = self._get_flow(flow_id)
            if flow.channel.requires_send_callback and flow.send_callback is None:
                raise NotRegisteredError(
                    f"flow {flow_id}: cm_bulk_request before cm_register_send"
                )
            flow.stats.requests += 1
            flow.macroflow.scheduler.enqueue(flow_id)
            if flow.macroflow not in touched:
                touched.append(flow.macroflow)
        for macroflow in touched:
            self._maybe_grant(macroflow)
            self._arm_watchdog(macroflow)

    # ====================================================================== #
    # Application notifications                                              #
    # ====================================================================== #
    def cm_notify(self, flow_id: int, nsent: int) -> None:
        """Report that ``nsent`` payload bytes of this flow left the host.

        Normally invoked from the IP output routine; an application that
        received a grant but decided not to transmit must call this with
        ``nsent=0`` so the CM can pass the grant to another flow on the same
        macroflow.
        """
        if nsent < 0:
            raise ValueError("cm_notify byte count cannot be negative")
        flow = self._get_flow(flow_id)
        self._charge_kernel_op()
        macroflow = flow.macroflow
        macroflow.charge_transmission(flow, nsent, self.sim.now)
        self._maybe_grant(macroflow)
        self._arm_watchdog(macroflow)

    def cm_update(self, flow_id: int, nsent: int, nrecd: int, lossmode: str, rtt: float) -> None:
        """Report receiver feedback for a flow.

        Parameters
        ----------
        nsent:
            Payload bytes the feedback covers (sent and now resolved —
            either delivered or lost).
        nrecd:
            Payload bytes the receiver confirmed.
        lossmode:
            One of the ``CM_*_CONGESTION`` constants.
        rtt:
            A round-trip time sample in seconds, or 0 when the client has
            no sample for this update.
        """
        if lossmode not in LOSS_MODES:
            raise ValueError(f"unknown loss mode {lossmode!r}")
        if nsent < 0 or nrecd < 0:
            raise ValueError("cm_update byte counts cannot be negative")
        if nrecd > nsent:
            raise ValueError("cm_update cannot report more bytes received than sent")
        flow = self._get_flow(flow_id)
        self._charge_kernel_op()
        macroflow = flow.macroflow
        macroflow.apply_feedback(flow, nsent, nrecd, lossmode, rtt, self.sim.now)
        self._maybe_grant(macroflow)
        self._dispatch_rate_callbacks(macroflow)
        self._arm_watchdog(macroflow)

    # ====================================================================== #
    # Querying                                                               #
    # ====================================================================== #
    def cm_query(self, flow_id: int) -> QueryResult:
        """Return the CM's current estimate of the flow's path conditions."""
        flow = self._get_flow(flow_id)
        self._charge_kernel_op()
        return flow.macroflow.status()

    # ====================================================================== #
    # Macroflow construction / splitting                                     #
    # ====================================================================== #
    def macroflow_of(self, flow_id: int) -> Macroflow:
        """The macroflow a flow currently belongs to."""
        return self._get_flow(flow_id).macroflow

    def cm_split(self, flow_id: int) -> Macroflow:
        """Move a flow into a brand-new private macroflow.

        Used when the default per-destination aggregation is wrong for the
        application (e.g. a flow receiving different network-layer service).
        The new macroflow starts with fresh congestion state.
        """
        flow = self._get_flow(flow_id)
        self._charge_kernel_op()
        old = flow.macroflow
        old.remove_flow(flow)
        if old.is_empty and old.key is None:
            self._drop_macroflow(old)
        new = self._new_macroflow(key=None)
        new.add_flow(flow)
        return new

    def cm_merge(self, flow_id: int, into_flow_id: int) -> Macroflow:
        """Move ``flow_id`` into the macroflow of ``into_flow_id``."""
        flow = self._get_flow(flow_id)
        target = self._get_flow(into_flow_id)
        if flow.macroflow is target.macroflow:
            return target.macroflow
        self._charge_kernel_op()
        old = flow.macroflow
        old.remove_flow(flow)
        if old.is_empty and old.key is None:
            self._drop_macroflow(old)
        target.macroflow.add_flow(flow)
        return target.macroflow

    # ====================================================================== #
    # Kernel-internal interface                                              #
    # ====================================================================== #
    def lookup_flow(self, src: str, dst: str, sport: int, dport: int, protocol: str) -> Optional[int]:
        """Resolve a packet's addressing tuple to a ``cm_flowid``.

        This is the "well-defined CM interface that takes the flow
        parameters as arguments" the IP output routine uses before calling
        :meth:`cm_notify`.  Wildcard (zero) ports registered at ``cm_open``
        time are honoured, which is what connected vs unconnected UDP
        sockets differ on in the API-overhead study.
        """
        for key in (
            (src, dst, sport, dport, protocol),
            (src, dst, sport, 0, protocol),
            (src, dst, 0, dport, protocol),
            (src, dst, 0, 0, protocol),
        ):
            flow_id = self._flows_by_key.get(key)
            if flow_id is not None:
                return flow_id
        return None

    def flow(self, flow_id: int) -> Flow:
        """Return the :class:`Flow` record (primarily for tests/experiments)."""
        return self._get_flow(flow_id)

    @property
    def macroflows(self) -> List[Macroflow]:
        """All live macroflows (including empty ones awaiting expiry)."""
        return list(self._macroflows.values())

    @property
    def open_flow_count(self) -> int:
        """Number of currently open flows."""
        return len(self._flows)

    # ====================================================================== #
    # Internals                                                              #
    # ====================================================================== #
    def _get_flow(self, flow_id: int, allow_closed: bool = False) -> Flow:
        flow = self._flows.get(flow_id)
        if flow is None:
            raise UnknownFlowError(f"unknown cm_flowid {flow_id}")
        if not flow.is_open and not allow_closed:
            raise FlowClosedError(f"cm_flowid {flow_id} is closed")
        return flow

    def _charge_kernel_op(self) -> None:
        costs = getattr(self.host, "costs", None)
        if costs is not None:
            costs.charge_operation("cm_kernel_op", category="cm")

    # ------------------------------------------------------------ macroflows
    def _macroflow_for_destination(self, dst: str) -> Macroflow:
        macroflow = self._macroflows_by_key.get(dst)
        if macroflow is None:
            macroflow = self._new_macroflow(key=dst)
            self._macroflows_by_key[dst] = macroflow
        return macroflow

    def _new_macroflow(self, key) -> Macroflow:
        macroflow = Macroflow(
            macroflow_id=self._next_macroflow_id,
            key=key,
            mtu=self.mtu,
            controller=self.controller_factory(self.mtu),
            scheduler=self.scheduler_factory(),
        )
        self._next_macroflow_id += 1
        self._macroflows[macroflow.macroflow_id] = macroflow
        if self._telemetry_hub is not None:
            macroflow._probe_congestion = self._telemetry_hub.probe("cm.congestion")
        return macroflow

    def _drop_macroflow(self, macroflow: Macroflow) -> None:
        self._macroflows.pop(macroflow.macroflow_id, None)
        if macroflow.key is not None and self._macroflows_by_key.get(macroflow.key) is macroflow:
            self._macroflows_by_key.pop(macroflow.key, None)
        watchdog = self._watchdogs.pop(macroflow.macroflow_id, None)
        if watchdog is not None:
            watchdog.cancel()
        event = self._expiry_events.pop(macroflow.macroflow_id, None)
        if event is not None and event.pending:
            event.cancel()

    def _schedule_expiry(self, macroflow: Macroflow) -> None:
        self._cancel_expiry(macroflow)
        event = self.sim.schedule(self.macroflow_idle_timeout, self._expire_macroflow, macroflow)
        self._expiry_events[macroflow.macroflow_id] = event

    def _cancel_expiry(self, macroflow: Macroflow) -> None:
        event = self._expiry_events.pop(macroflow.macroflow_id, None)
        if event is not None and event.pending:
            event.cancel()

    def _expire_macroflow(self, macroflow: Macroflow) -> None:
        if macroflow.is_empty:
            self._drop_macroflow(macroflow)

    # --------------------------------------------------------------- granting
    def _maybe_grant(self, macroflow: Macroflow) -> None:
        """Grant pending requests while the macroflow window has room.

        Grants are dispatched in batches of up to ``grant_batch_size``: the
        scheduler pops a whole batch in one call and the bookkeeping for the
        batch is folded into one pass, instead of paying the full
        has-pending / window-check / pop cycle per MTU.  Service order and
        per-grant window semantics are identical to the one-at-a-time loop
        (see ``Scheduler.next_batch`` and ``Macroflow.grant_allowance``);
        with ``grant_batch_size=1`` this *is* the one-at-a-time loop.
        """
        scheduler = macroflow.scheduler
        if not scheduler.has_pending():
            return
        flows = self._flows
        mtu = macroflow.mtu
        batch_cap = self.grant_batch_size
        while True:
            allowance = macroflow.grant_allowance(batch_cap)
            if allowance <= 0:
                break
            batch = scheduler.next_batch(allowance)
            if not batch:
                break
            granted = []
            append = granted.append
            for flow_id in batch:
                flow = flows.get(flow_id)
                if flow is None or not flow.is_open or flow.macroflow is not macroflow:
                    # Stale entry (flow closed or moved); it consumes no window.
                    continue
                flow.granted_unnotified += 1
                flow.stats.grants += 1
                append(flow)
            if granted:
                macroflow.reserved_bytes += len(granted) * mtu
                probe = self._probe_grant
                if probe is not None:
                    now = self.sim.now
                    mf_id = macroflow.macroflow_id
                    for flow in granted:
                        probe(now, {"macroflow": mf_id, "flow": flow.flow_id})
                # Both channel kinds defer delivery (call_soon / control-socket
                # queue), so posting after the batch bookkeeping cannot recurse
                # into the grant path and preserves the per-grant ordering.
                for flow in granted:
                    flow.channel.post_send_grant(flow)
            if len(batch) < allowance:
                # The scheduler ran dry before the window did.
                break

    # ------------------------------------------------------- rate callbacks
    def _dispatch_rate_callbacks(self, macroflow: Macroflow) -> None:
        status = macroflow.status()
        for flow in list(macroflow.flows.values()):
            if flow.update_callback is None and flow.channel.requires_send_callback:
                continue
            if flow.update_callback is None and not self._channel_wants_updates(flow):
                continue
            last = flow.last_notified_rate
            if last is None or last <= 0:
                should_notify = True
            else:
                should_notify = (
                    status.rate <= last / flow.thresh_down
                    or status.rate >= last * flow.thresh_up
                )
            if should_notify:
                flow.last_notified_rate = status.rate
                flow.stats.rate_callbacks += 1
                flow.channel.post_status_update(flow, status)

    @staticmethod
    def _channel_wants_updates(flow: Flow) -> bool:
        """User-space flows keep their callbacks in libcm, so the kernel-side
        record may be empty; the control socket decides whether anyone is
        listening."""
        wants = getattr(flow.channel, "wants_status_updates", None)
        if wants is None:
            return False
        return wants(flow.flow_id)

    # --------------------------------------------------------------- watchdog
    def _arm_watchdog(self, macroflow: Macroflow) -> None:
        if not self.feedback_watchdog_enabled:
            return
        watchdog = self._watchdogs.get(macroflow.macroflow_id)
        if watchdog is None:
            watchdog = Timer(self.sim, self._watchdog_fired, macroflow)
            self._watchdogs[macroflow.macroflow_id] = watchdog
        if watchdog.pending:
            # Cheap path: the watchdog checks staleness itself when it fires,
            # so there is no need to push the timer back on every packet.
            return
        interval = max(4.0 * macroflow.rtt.rto(), 3.0)
        watchdog.restart(interval)

    def _watchdog_fired(self, macroflow: Macroflow) -> None:
        """Timer-driven error handling (§2 "background tasks and error handling").

        If a macroflow has data or grants outstanding but no feedback has
        arrived for several RTOs, assume the feedback (or the data) was lost
        to persistent congestion: shrink the window, forget the in-flight
        accounting so the macroflow cannot deadlock, and grant any pending
        requests under the reduced window.
        """
        if macroflow.is_empty:
            return
        stalled = (
            macroflow.outstanding_bytes > 0
            or macroflow.reserved_bytes > 0
            or macroflow.scheduler.has_pending()
        )
        if not stalled:
            return
        idle_for = self.sim.now - (macroflow.last_feedback_time or 0.0)
        if macroflow.last_feedback_time is not None and idle_for < max(4.0 * macroflow.rtt.rto(), 3.0) - 1e-9:
            # Feedback arrived since the timer was armed; just re-arm.
            self._arm_watchdog(macroflow)
            return
        macroflow.controller.on_congestion(CM_PERSISTENT_CONGESTION)
        macroflow.clear_in_flight()
        self._maybe_grant(macroflow)
        self._dispatch_rate_callbacks(macroflow)
        if macroflow.scheduler.has_pending() or macroflow.outstanding_bytes > 0:
            self._arm_watchdog(macroflow)
