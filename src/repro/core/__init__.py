"""The Congestion Manager: the paper's primary contribution.

Public surface:

* :class:`CongestionManager` — the sender-side "kernel module".
* :class:`LibCM` — the user-space library (control socket + select/ioctl).
* Congestion controllers, schedulers, and the loss-mode constants used by
  ``cm_update``.
"""

from .congestion import AimdWindowController, CongestionController, RateAimdController
from .constants import (
    CM_ECN_CONGESTION,
    CM_NO_CONGESTION,
    CM_PERSISTENT_CONGESTION,
    CM_TRANSIENT_CONGESTION,
    LOSS_MODES,
)
from .errors import CMError, FlowClosedError, NotRegisteredError, UnknownFlowError
from .flow import DirectChannel, Flow, NotificationChannel
from .libcm import ControlSocketChannel, LibCM
from .macroflow import Macroflow
from .manager import CongestionManager
from .query import QueryResult
from .rtt import RttEstimator
from .scheduler import RoundRobinScheduler, Scheduler, WeightedRoundRobinScheduler

__all__ = [
    "CongestionManager",
    "LibCM",
    "ControlSocketChannel",
    "Macroflow",
    "Flow",
    "DirectChannel",
    "NotificationChannel",
    "QueryResult",
    "RttEstimator",
    "CongestionController",
    "AimdWindowController",
    "RateAimdController",
    "Scheduler",
    "RoundRobinScheduler",
    "WeightedRoundRobinScheduler",
    "CMError",
    "UnknownFlowError",
    "FlowClosedError",
    "NotRegisteredError",
    "CM_NO_CONGESTION",
    "CM_TRANSIENT_CONGESTION",
    "CM_PERSISTENT_CONGESTION",
    "CM_ECN_CONGESTION",
    "LOSS_MODES",
]
