"""Congestion controllers used by the Congestion Manager.

The paper's CM uses a window-based additive-increase / multiplicative-
decrease (AIMD) controller with slow start that "mimics TCP" so that a
macroflow is TCP-compatible, but the CM's modularity "encourages
experimentation with other non-AIMD schemes".  Accordingly this module
provides:

* :class:`AimdWindowController` — the default; byte-counting AIMD with slow
  start, an initial window of one MTU, and distinct reactions to transient
  congestion (halve), persistent congestion (collapse to one MTU and
  re-enter slow start) and ECN marks (halve, no loss implied).  Byte
  counting and the 1-MTU initial window are the two algorithmic differences
  from the Linux TCP of the paper's era that the evaluation calls out.
* :class:`RateAimdController` — a simple rate-based AIMD alternative used in
  the ablation benchmarks.

All window quantities are in **bytes**.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from .constants import (
    CM_ECN_CONGESTION,
    CM_NO_CONGESTION,
    CM_PERSISTENT_CONGESTION,
    CM_TRANSIENT_CONGESTION,
    DEFAULT_RTT_SECONDS,
)

__all__ = ["CongestionController", "AimdWindowController", "RateAimdController"]


class CongestionController(ABC):
    """Interface every CM congestion controller implements.

    The macroflow drives the controller with acknowledgement and congestion
    events extracted from ``cm_update`` calls, and asks it how large the
    congestion window currently is (:attr:`cwnd`) and what sustainable rate
    that corresponds to (:meth:`rate_estimate`).
    """

    #: Human-readable name used in experiment reports.
    name = "base"

    def __init__(self, mtu: int):
        if mtu <= 0:
            raise ValueError("mtu must be positive")
        self.mtu = mtu

    # --------------------------------------------------------------- signals
    @abstractmethod
    def on_ack(self, nbytes: int) -> None:
        """``nbytes`` were reported successfully received (window may grow)."""

    @abstractmethod
    def on_congestion(self, mode: str) -> None:
        """React to a congestion signal (one of the ``CM_*_CONGESTION`` modes)."""

    @abstractmethod
    def on_idle_restart(self) -> None:
        """The macroflow has been idle; reset any probing state conservatively."""

    # ---------------------------------------------------------------- queries
    @property
    @abstractmethod
    def cwnd(self) -> float:
        """Current congestion window in bytes."""

    @abstractmethod
    def rate_estimate(self, srtt: float) -> float:
        """Sustainable sending rate in bytes/second given the smoothed RTT."""

    def dispatch_update(self, nrecd: int, lossmode: str) -> None:
        """Convenience: route one ``cm_update`` report into ack/congestion calls.

        A congestion report may still acknowledge bytes (e.g. TCP's triple
        duplicate ACK tells us three later segments arrived); the congestion
        reaction is applied first so the acknowledgement growth starts from
        the reduced window, which keeps the response conservative.
        """
        if lossmode != CM_NO_CONGESTION:
            self.on_congestion(lossmode)
        if nrecd > 0 and lossmode == CM_NO_CONGESTION:
            self.on_ack(nrecd)


class AimdWindowController(CongestionController):
    """TCP-compatible window AIMD with slow start and byte counting.

    Parameters
    ----------
    mtu:
        Maximum transmission unit; the window is expressed in bytes but
        grows/shrinks in MTU-derived quanta like TCP does.
    initial_window_mtus:
        Initial congestion window in MTUs.  The paper's CM uses 1 (versus
        Linux's 2), which is why TCP/CM pays one extra RTT on short
        transfers (Figures 4 and 7).
    max_window_bytes:
        Optional cap on the window, modelling the receiver's advertised
        window / socket buffer.
    ssthresh_bytes:
        Initial slow-start threshold (effectively unbounded by default).
    """

    name = "aimd-window"

    def __init__(
        self,
        mtu: int,
        initial_window_mtus: int = 1,
        max_window_bytes: Optional[float] = None,
        ssthresh_bytes: float = float("inf"),
    ):
        super().__init__(mtu)
        if initial_window_mtus < 1:
            raise ValueError("initial window must be at least 1 MTU")
        self.initial_window_bytes = float(initial_window_mtus * mtu)
        self.max_window_bytes = max_window_bytes
        self._cwnd = self.initial_window_bytes
        self.ssthresh = float(ssthresh_bytes)
        self.transient_events = 0
        self.persistent_events = 0
        self.ecn_events = 0

    # --------------------------------------------------------------- signals
    def on_ack(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        if self._cwnd < self.ssthresh:
            # Slow start: grow by the bytes acknowledged (byte counting),
            # bounded per ack so a huge cumulative report cannot explode the
            # window past doubling-per-RTT behaviour.
            self._cwnd += min(nbytes, self._cwnd)
        else:
            # Congestion avoidance: one MTU per window's worth of data, in
            # byte-counted increments.
            self._cwnd += self.mtu * (float(nbytes) / self._cwnd)
        self._clamp()

    def on_congestion(self, mode: str) -> None:
        if mode == CM_TRANSIENT_CONGESTION:
            self.transient_events += 1
            self.ssthresh = max(self._cwnd / 2.0, 2.0 * self.mtu)
            self._cwnd = self.ssthresh
        elif mode == CM_PERSISTENT_CONGESTION:
            self.persistent_events += 1
            self.ssthresh = max(self._cwnd / 2.0, 2.0 * self.mtu)
            self._cwnd = float(self.mtu)
        elif mode == CM_ECN_CONGESTION:
            self.ecn_events += 1
            self.ssthresh = max(self._cwnd / 2.0, 2.0 * self.mtu)
            self._cwnd = self.ssthresh
        elif mode == CM_NO_CONGESTION:
            return
        else:
            raise ValueError(f"unknown congestion mode: {mode!r}")
        self._clamp()

    def on_idle_restart(self) -> None:
        """After a long idle period, restart probing from slow start.

        The window itself is retained (this is precisely the state-sharing
        benefit of the macroflow), but ssthresh is set to the old window so
        that growth resumes cautiously.
        """
        self.ssthresh = max(self._cwnd, 2.0 * self.mtu)

    # ---------------------------------------------------------------- queries
    @property
    def cwnd(self) -> float:
        return self._cwnd

    def rate_estimate(self, srtt: float) -> float:
        srtt = srtt if srtt > 0 else DEFAULT_RTT_SECONDS
        return self._cwnd / srtt

    def in_slow_start(self) -> bool:
        """True while the window is below the slow-start threshold."""
        return self._cwnd < self.ssthresh

    # -------------------------------------------------------------- internals
    def _clamp(self) -> None:
        if self.max_window_bytes is not None:
            self._cwnd = min(self._cwnd, float(self.max_window_bytes))
        self._cwnd = max(self._cwnd, float(self.mtu))


class RateAimdController(CongestionController):
    """A simple rate-based AIMD controller (non-window alternative).

    The controller maintains a target rate directly: additive increase of
    one MTU per RTT's worth of acknowledged data, multiplicative decrease on
    congestion.  It exists to exercise the CM's controller-pluggability (the
    ablation benchmark compares it with the default window controller);
    it is intentionally simpler than TFRC.
    """

    name = "aimd-rate"

    def __init__(self, mtu: int, initial_rate_bps: float = 64_000.0, min_rate_bps: float = 8_000.0):
        super().__init__(mtu)
        self._rate_bytes = initial_rate_bps / 8.0
        self._min_rate_bytes = min_rate_bps / 8.0
        self._acked_since_increase = 0
        self._assumed_rtt = DEFAULT_RTT_SECONDS

    def on_ack(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self._acked_since_increase += nbytes
        window_equivalent = max(self._rate_bytes * self._assumed_rtt, self.mtu)
        while self._acked_since_increase >= window_equivalent:
            self._acked_since_increase -= window_equivalent
            self._rate_bytes += self.mtu / self._assumed_rtt

    def on_congestion(self, mode: str) -> None:
        if mode == CM_NO_CONGESTION:
            return
        if mode == CM_PERSISTENT_CONGESTION:
            self._rate_bytes = max(self._min_rate_bytes, self._rate_bytes / 4.0)
        else:
            self._rate_bytes = max(self._min_rate_bytes, self._rate_bytes / 2.0)
        self._acked_since_increase = 0

    def on_idle_restart(self) -> None:
        self._acked_since_increase = 0

    def observe_rtt(self, srtt: float) -> None:
        """Give the controller an RTT estimate for its rate<->window conversion."""
        if srtt > 0:
            self._assumed_rtt = srtt

    @property
    def cwnd(self) -> float:
        # Expose the window-equivalent so the macroflow's outstanding-bytes
        # admission check keeps working with a rate-based controller.
        return max(self._rate_bytes * self._assumed_rtt, float(self.mtu))

    def rate_estimate(self, srtt: float) -> float:
        if srtt > 0:
            self.observe_rtt(srtt)
        return self._rate_bytes
