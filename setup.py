"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that fully offline environments (no ``wheel`` package available, no network
to fetch one) can still do an editable install via the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
